#include "offload/dispatch.hpp"

#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/fec_stages.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "scrambler/block_scrambler.hpp"

namespace plfsr::offload {

OffloadDispatcher::OffloadDispatcher() {
  for (const CrcSpec& s : crcspec::all()) crc_specs_.emplace(s.name, s);
  for (const catalog::NamedPoly& p : catalog::all_scrambler_polys())
    scrambler_polys_.emplace(p.name, p.poly);
  for (const FecSpec& s : fec::all_fec_specs())
    fec_specs_.emplace(s.name(), s);
}

namespace {

template <typename Map>
std::vector<std::string> keys_of(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;  // std::map iterates sorted
}

WireReply error_reply(const RequestView& req, Status status) {
  WireReply r;
  r.status = status;
  r.op = req.op;
  return r;
}

/// One compiled kPipeline chain: a started fused Pipeline whose terminal
/// CollectSink hands the single transformed frame back per request.
struct CachedChain {
  std::unique_ptr<Pipeline> pipe;
  CollectSink* sink = nullptr;  // owned by pipe
  bool has_crc = false;
};

/// Worker-thread cache of compiled chains, keyed by the chain signature
/// (op bytes + names + params). Repeat chains reuse keystream caches and
/// engine handles; a chain that aborts (a stage threw) is evicted.
std::map<std::string, CachedChain>& chain_cache() {
  thread_local std::map<std::string, CachedChain> cache;
  return cache;
}

std::string chain_key(const std::vector<PipelineOp>& ops) {
  std::string key;
  for (const PipelineOp& o : ops) {
    key.push_back(static_cast<char>('0' + static_cast<int>(o.op)));
    key.append(o.name);
    key.push_back('\0');
    for (int i = 0; i < 8; ++i)
      key.push_back(static_cast<char>(o.param >> (8 * i)));
    key.push_back('|');
  }
  return key;
}

}  // namespace

std::vector<std::string> OffloadDispatcher::crc_names() const {
  return keys_of(crc_specs_);
}
std::vector<std::string> OffloadDispatcher::scrambler_names() const {
  return keys_of(scrambler_polys_);
}
std::vector<std::string> OffloadDispatcher::fec_names() const {
  return keys_of(fec_specs_);
}

Response OffloadDispatcher::dispatch(const Request& req) const {
  const RequestView view{req.op, req.flags, req.param, req.name,
                         std::span<const std::uint8_t>(req.payload)};
  WireReply w = execute(view);
  Response r;
  r.status = w.status;
  r.op = w.op;
  r.result = w.result;
  r.payload.assign(w.payload.begin(), w.payload.end());
  return r;
}

WireReply OffloadDispatcher::execute(const RequestView& req) const {
  try {
    switch (req.op) {
      case Op::kPing: {
        WireReply r;
        r.op = Op::kPing;
        r.result = req.payload.size();
        arena_.acquire(r.payload, req.payload.size());
        std::memcpy(r.payload.data(), req.payload.data(),
                    req.payload.size());
        return r;
      }
      case Op::kCrc:
        return do_crc(req);
      case Op::kScramble:
        return do_scramble(req);
      case Op::kFecEncode:
        return do_fec(req, /*encode=*/true);
      case Op::kFecDecode:
        return do_fec(req, /*encode=*/false);
      case Op::kPipeline:
        return do_pipeline(req);
    }
    return error_reply(req, Status::kUnknownOp);
  } catch (const std::invalid_argument&) {
    // The compute layer vetoed the inputs (bad sizes, zero seed, ...):
    // the client's fault, not ours.
    return error_reply(req, Status::kBadPayload);
  } catch (const std::exception&) {
    return error_reply(req, Status::kInternal);
  }
}

WireReply OffloadDispatcher::do_crc(const RequestView& req) const {
  const auto it = crc_specs_.find(std::string(req.name));
  if (it == crc_specs_.end()) return error_reply(req, Status::kUnknownName);
  const EngineRegistry& reg = EngineRegistry::instance();
  const CrcEngineHandle engine =
      reg.make_cached(reg.best_name_for(it->second), it->second);
  WireReply r;
  r.op = Op::kCrc;
  r.result = engine.compute(req.payload);  // straight off the view
  return r;
}

WireReply OffloadDispatcher::do_scramble(const RequestView& req) const {
  const auto it = scrambler_polys_.find(std::string(req.name));
  if (it == scrambler_polys_.end())
    return error_reply(req, Status::kUnknownName);
  if (req.param == 0) return error_reply(req, Status::kBadPayload);
  // Stateful engines cannot be shared across workers; one per thread per
  // generator, re-aimed with reseed() (cheap — the per-bit mask tables
  // depend only on the generator, not the seed).
  thread_local std::map<std::string, BlockScrambler> engines;
  const std::string name(req.name);
  auto eng = engines.find(name);
  if (eng == engines.end())
    eng = engines
              .emplace(name, BlockScrambler(it->second,
                                            /*seed=*/req.param))
              .first;
  // reseed throws std::invalid_argument when the seed's in-register bits
  // are all zero — execute() maps that to kBadPayload.
  eng->second.reseed(req.param);
  WireReply r;
  r.op = Op::kScramble;
  // One copy into the recycled reply descriptor, then transform in
  // place; the reply serializes straight from it.
  arena_.acquire(r.payload, req.payload.size());
  std::memcpy(r.payload.data(), req.payload.data(), req.payload.size());
  eng->second.process(r.payload.data(), r.payload.size());
  return r;
}

FecCodecHandle OffloadDispatcher::fec_codec(const std::string& name,
                                            const FecSpec& spec) const {
  {
    std::lock_guard<std::mutex> lock(fec_mu_);
    const auto it = fec_cache_.find(name);
    if (it != fec_cache_.end()) return it->second;
  }
  // Construct outside the lock: codec construction precomputes field
  // tables and must not serialize other workers (nor poison the cache
  // when best_for throws).
  FecCodecHandle codec = FecRegistry::instance().best_for(spec);
  std::lock_guard<std::mutex> lock(fec_mu_);
  return fec_cache_.try_emplace(name, std::move(codec)).first->second;
}

WireReply OffloadDispatcher::do_fec(const RequestView& req,
                                    bool encode) const {
  const auto it = fec_specs_.find(std::string(req.name));
  if (it == fec_specs_.end()) return error_reply(req, Status::kUnknownName);
  const FecCodecHandle codec = fec_codec(it->first, it->second);
  // Serial ParallelFec: concurrency comes from the server's worker pool
  // (one worker per in-flight request), not from splitting one request.
  const ParallelFec fec(codec, 1);
  WireReply r;
  r.op = encode ? Op::kFecEncode : Op::kFecDecode;
  if (encode) {
    // Kernels write straight from the request view into the recycled
    // reply descriptor — no intermediate buffer anywhere.
    arena_.acquire(r.payload,
                   fec_encoded_size(*codec, req.payload.size()));
    const ParallelFecResult res = fec.encode(req.payload, r.payload.span());
    r.result = res.blocks;
    return r;
  }
  // fec_decoded_size throws std::invalid_argument on a length no encode
  // could have produced -> kBadPayload via execute(). A block beyond
  // the correction radius is *data*, not an error: the reply stays kOk
  // and the failure shows up in the result word.
  const std::size_t out_len = fec_decoded_size(*codec, req.payload.size());
  arena_.acquire(r.payload, out_len);
  const ParallelFecResult res = fec.decode(req.payload, r.payload.span());
  r.result = make_fec_result(res.corrected_errors + res.corrected_erasures,
                             res.failed_blocks);
  return r;
}

WireReply OffloadDispatcher::do_pipeline(const RequestView& req) const {
  std::vector<PipelineOp> ops;
  std::span<const std::uint8_t> data;
  const Status st = decode_pipeline_ops(req.payload, ops, data);
  if (st != Status::kOk) return error_reply(req, st);

  const std::string key = chain_key(ops);
  auto& cache = chain_cache();
  auto cached = cache.find(key);
  if (cached == cache.end()) {
    // Compile the chain into a fused pipeline. Construction-time vetoes
    // (unknown names, zero scramble seed) happen here, before anything
    // is cached.
    CachedChain chain;
    std::vector<std::unique_ptr<Stage>> stages;
    for (const PipelineOp& o : ops) {
      switch (o.op) {
        case Op::kCrc: {
          const auto it = crc_specs_.find(o.name);
          if (it == crc_specs_.end())
            return error_reply(req, Status::kUnknownName);
          const EngineRegistry& reg = EngineRegistry::instance();
          stages.push_back(std::make_unique<FcsStage>(
              reg.make_cached(reg.best_name_for(it->second), it->second)));
          chain.has_crc = true;
          break;
        }
        case Op::kScramble: {
          const auto it = scrambler_polys_.find(o.name);
          if (it == scrambler_polys_.end())
            return error_reply(req, Status::kUnknownName);
          if (o.param == 0) return error_reply(req, Status::kBadPayload);
          // ScrambleStage is frame-synchronous from seed = param — the
          // exact semantics of a standalone kScramble request — and its
          // keystream prefix cache persists across requests.
          stages.push_back(
              std::make_unique<ScrambleStage>(it->second, o.param));
          break;
        }
        case Op::kFecEncode:
        case Op::kFecDecode: {
          const auto it = fec_specs_.find(o.name);
          if (it == fec_specs_.end())
            return error_reply(req, Status::kUnknownName);
          const FecCodecHandle codec = fec_codec(it->first, it->second);
          if (o.op == Op::kFecEncode)
            stages.push_back(std::make_unique<RsEncodeStage>(codec));
          else
            stages.push_back(std::make_unique<RsDecodeStage>(codec));
          break;
        }
        default:
          return error_reply(req, Status::kUnknownOp);
      }
    }
    auto sink = std::make_unique<CollectSink>();
    chain.sink = sink.get();
    stages.push_back(std::move(sink));
    chain.pipe =
        std::make_unique<Pipeline>(std::move(stages), PipelinePlan::fused());
    chain.pipe->start();
    cached = cache.emplace(key, std::move(chain)).first;
  }

  CachedChain& chain = cached->second;
  Frame f;
  arena_.acquire(f.bytes, data.size());
  std::memcpy(f.bytes.data(), data.data(), data.size());
  FrameBatch batch;
  batch.push_back(std::move(f));
  if (!chain.pipe->push(std::move(batch))) {
    // A stage threw mid-chain (e.g. a length no FEC encode could have
    // produced): the pipeline aborted, so drop it from the cache and
    // classify the failure like execute() would.
    Status est = Status::kInternal;
    try {
      chain.pipe->wait();
    } catch (const std::invalid_argument&) {
      est = Status::kBadPayload;
    } catch (const std::exception&) {
      est = Status::kInternal;
    }
    cache.erase(cached);
    return error_reply(req, est);
  }
  std::vector<Frame> out = chain.sink->take();
  if (out.size() != 1) {
    cache.erase(cached);
    return error_reply(req, Status::kInternal);
  }
  WireReply r;
  r.op = Op::kPipeline;
  r.result = chain.has_crc ? out[0].crc : 0;
  r.payload = std::move(out[0].bytes);  // reply straight from the frame
  return r;
}

}  // namespace plfsr::offload
