// GF(2) matrix -> XOR10 netlist mapper with common-pattern sharing.
//
// This is the C++ replacement for the paper's Matlab program (§4): "it
// maps the required matrices on 10-bit XORs, by an algorithm that reduces
// the number of required XORs detecting 10-bit common patterns among the
// rows of B_Mt and T".
//
// Without sharing, output i is a balanced fan-in-10 XOR tree over the
// ones of row i. With sharing, a greedy pass repeatedly extracts the
// signal subset (capped at 10 elements) that co-occurs in the most rows,
// computes it once, and substitutes the new intermediate signal into
// every containing row — exactly the kind of row-pattern reuse the paper
// describes. Extraction continues while it strictly reduces the
// estimated cell count.
#pragma once

#include <cstddef>

#include "gf2/gf2_matrix.hpp"
#include "mapper/xor_netlist.hpp"

namespace plfsr {

/// Mapper knobs.
struct MapperOptions {
  unsigned max_fanin = 10;  ///< PiCoGA logic-cell XOR width
  bool share_patterns = true;  ///< enable the common-pattern CSE pass
  std::size_t min_pattern_size = 2;  ///< smallest subset worth extracting
  std::size_t min_occurrences = 2;   ///< must appear in this many rows
};

/// Result statistics alongside the netlist.
struct MapperStats {
  std::size_t cells = 0;          ///< XOR10 gate count
  unsigned depth = 0;             ///< pipeline levels
  std::size_t patterns_shared = 0;  ///< CSE extractions performed
  std::size_t cells_without_sharing = 0;  ///< baseline for the ablation
};

/// Map y = M * z: inputs are the matrix columns, outputs the rows.
/// The returned netlist is verified by construction to have fan-in
/// <= max_fanin; tests check evaluate(z) == M*z exhaustively/randomly.
XorNetlist map_matrix(const Gf2Matrix& m, const MapperOptions& opts = {},
                      MapperStats* stats = nullptr);

/// Splice a matrix product into an existing netlist: row r of `m` becomes
/// an XOR tree over primary inputs input_offset + c for each set column c.
/// Returns one root signal per row (kZeroSignal for all-zero rows) without
/// touching the netlist's output list — the caller composes them further
/// (this is how the op builders fuse B_Mt trees with the companion loop).
std::vector<SignalId> map_matrix_into(XorNetlist& nl, const Gf2Matrix& m,
                                      std::size_t input_offset,
                                      const MapperOptions& opts = {},
                                      MapperStats* stats = nullptr);

/// Cell count of a plain (unshared) fan-in-F tree over `fanin` terms.
std::size_t xor_tree_cells(std::size_t fanin, unsigned max_fanin);

}  // namespace plfsr
