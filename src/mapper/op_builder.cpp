#include "mapper/op_builder.hpp"

#include <stdexcept>

#include "lfsr/linear_system.hpp"

namespace plfsr {

namespace {

/// Final companion-loop layer: x'_i = x_{i-1} (+ last-col tap) (+ w_i).
/// Appends one output per state bit; each is at most a 3-input XOR.
void emit_companion_loop(XorNetlist& nl, const Gf2Matrix& amt,
                         const std::vector<SignalId>& w) {
  const std::size_t k = amt.rows();
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<SignalId> terms;
    if (i > 0) terms.push_back(static_cast<SignalId>(i - 1));
    if (amt.get(i, k - 1)) terms.push_back(static_cast<SignalId>(k - 1));
    if (!w.empty() && w[i] != kZeroSignal) terms.push_back(w[i]);
    if (terms.empty()) {
      nl.add_output(kZeroSignal);
    } else if (terms.size() == 1) {
      nl.add_output(terms[0]);
    } else {
      // At most 3 terms; split only when an ablation narrows the cell
      // below that (e.g. max_fanin == 2 modelling a LUT2-grain fabric).
      while (terms.size() > nl.max_fanin()) {
        const SignalId merged =
            nl.add_node({terms[terms.size() - 2], terms[terms.size() - 1]});
        terms.pop_back();
        terms.back() = merged;
      }
      nl.add_output(nl.add_node(std::move(terms)));
    }
  }
}

std::vector<bool> state_mask(std::size_t k, std::size_t total) {
  std::vector<bool> mask(total, false);
  for (std::size_t i = 0; i < k; ++i) mask[i] = true;
  return mask;
}

}  // namespace

CrcOpPlan build_derby_crc_ops(const Gf2Poly& g, std::size_t m,
                              const MapperOptions& opts) {
  const LinearSystem sys = make_crc_system(g);
  const LookAhead la(sys, m);
  CrcOpPlan plan;
  plan.m = m;
  plan.width = static_cast<unsigned>(sys.dim());
  plan.derby = DerbyTransform(la);
  const std::size_t k = sys.dim();

  // --- op1: inputs [x_t(k) | u(M)] -> outputs x_t'(k) ---
  plan.op1.netlist = XorNetlist(k + m, opts.max_fanin);
  MapperStats bstats;
  const std::vector<SignalId> w =
      map_matrix_into(plan.op1.netlist, plan.derby.bmt(), k, opts, &bstats);
  emit_companion_loop(plan.op1.netlist, plan.derby.amt(), w);
  plan.op1.stats = bstats;
  plan.op1.stats.cells = plan.op1.netlist.node_count();
  plan.op1.stats.depth = plan.op1.netlist.depth();
  plan.op1.stats.cells_without_sharing = bstats.cells_without_sharing + k;
  plan.op1.loop_depth =
      plan.op1.netlist.depth_from(state_mask(k, k + m));
  plan.op1.in_bits = m;
  plan.op1.out_bits = 0;  // the running state never leaves the array

  // --- op2: y = T x_t ---
  plan.op2.netlist = map_matrix(plan.derby.t(), opts, &plan.op2.stats);
  plan.op2.loop_depth = 0;  // pure feed-forward
  plan.op2.in_bits = 0;
  plan.op2.out_bits = k;
  return plan;
}

MappedOp build_direct_crc_op(const Gf2Poly& g, std::size_t m,
                             const MapperOptions& opts) {
  const LinearSystem sys = make_crc_system(g);
  const LookAhead la(sys, m);
  const std::size_t k = sys.dim();
  MappedOp op;
  op.netlist = map_matrix(la.am().hconcat(la.bm()), opts, &op.stats);
  op.loop_depth = op.netlist.depth_from(state_mask(k, k + m));
  op.in_bits = m;
  op.out_bits = 0;
  return op;
}

ScramblerOpPlan build_scrambler_op(const Gf2Poly& g, std::size_t m,
                                   const MapperOptions& opts) {
  const LinearSystem sys = make_scrambler_system(g);
  const LookAhead la(sys, m);
  ScramblerOpPlan plan;
  plan.m = m;
  plan.derby = DerbyTransform(la);
  const std::size_t k = sys.dim();

  plan.op.netlist = XorNetlist(k + m, opts.max_fanin);
  // State recurrence first (outputs 0..k-1): autonomous, so no w forest.
  emit_companion_loop(plan.op.netlist, plan.derby.amt(), {});
  // Output block y_M = (C_M T) x_t + D_M u — one fused feed-forward map.
  const Gf2Matrix cmt = la.cm() * plan.derby.t();
  MapperStats ystats;
  const std::vector<SignalId> y = map_matrix_into(
      plan.op.netlist, cmt.hconcat(la.dm()), 0, opts, &ystats);
  for (SignalId s : y) plan.op.netlist.add_output(s);

  plan.op.stats = ystats;
  plan.op.stats.cells = plan.op.netlist.node_count();
  plan.op.stats.depth = plan.op.netlist.depth();
  plan.op.loop_depth =
      plan.op.netlist.depth_from(state_mask(k, k + m), 0, k);
  plan.op.in_bits = m;
  plan.op.out_bits = m;
  return plan;
}

std::uint64_t CrcOpPlan::run(const BitStream& bits,
                             std::uint64_t init_register) const {
  if (bits.size() % m != 0)
    throw std::invalid_argument("CrcOpPlan::run: length not a multiple of M");
  const std::size_t k = width;
  Gf2Vec xt =
      derby.transform_state(Gf2Vec::from_word(k, init_register));
  for (std::size_t pos = 0; pos < bits.size(); pos += m) {
    Gf2Vec z(k + m);
    for (std::size_t i = 0; i < k; ++i) z.set(i, xt.get(i));
    for (std::size_t i = 0; i < m; ++i) z.set(k + i, bits.get(pos + i));
    xt = op1.netlist.evaluate(z);
  }
  return op2.netlist.evaluate(xt).to_word();
}

BitStream ScramblerOpPlan::run(const BitStream& in, std::uint64_t seed) const {
  if (in.size() % m != 0)
    throw std::invalid_argument(
        "ScramblerOpPlan::run: length not a multiple of M");
  const std::size_t k = derby.dim();
  Gf2Vec xt = derby.transform_state(Gf2Vec::from_word(k, seed));
  BitStream out;
  for (std::size_t pos = 0; pos < in.size(); pos += m) {
    Gf2Vec z(k + m);
    for (std::size_t i = 0; i < k; ++i) z.set(i, xt.get(i));
    for (std::size_t i = 0; i < m; ++i) z.set(k + i, in.get(pos + i));
    const Gf2Vec o = op.netlist.evaluate(z);  // [x_t' | y]
    Gf2Vec next(k);
    for (std::size_t i = 0; i < k; ++i) next.set(i, o.get(i));
    xt = std::move(next);
    for (std::size_t i = 0; i < m; ++i) out.push_back(o.get(k + i));
  }
  return out;
}

}  // namespace plfsr
