// Builders for the PiCoGA operations of §4.
//
// CRC, two-operation partition (the paper's chosen mapping):
//   op1: x_t(n+M) = A_Mt x_t(n) + B_Mt u_M(n)
//        built as  w = B_Mt u   (feed-forward XOR10 forest, CSE-shared)
//        then      x_t'_i = x_t_{i-1} (+ amt_i x_t_{k-1}) (+ w_i)
//        so the state-dependent logic is ONE cell deep: the pipeline can
//        accept a new M-bit chunk every cycle (II = 1).
//   op2: y = T x_t — pure feed-forward matrix, run once per message.
//
// Ablation op (Pei/Zukowski-style direct look-ahead): the untransformed
// [A^M | B_M] mapped as one netlist; its state-dependent depth grows like
// ceil(log10(row weight of A^M)) + 1, which is what caps the direct
// method's speed-up at ~0.5 M in the paper's Fig. 6 theory curve.
//
// Scrambler, single operation:
//   x_t' = A_Mt x_t (companion loop)  and  y_M = C_M T x_t + D_M u_M
//   (all output logic feed-forward), so no context switch is ever needed —
//   the paper's explanation for Fig. 8's flat profile.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf2/gf2_poly.hpp"
#include "lfsr/derby.hpp"
#include "lfsr/lookahead.hpp"
#include "mapper/matrix_mapper.hpp"
#include "mapper/xor_netlist.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// One mapped PiCoGA operation plus its cost summary.
struct MappedOp {
  XorNetlist netlist{0};
  MapperStats stats;
  unsigned loop_depth = 0;  ///< state-dependent depth (II of the op)
  std::size_t in_bits = 0;  ///< primary-input bits fed per issue (excl. state)
  std::size_t out_bits = 0; ///< bits leaving the array per issue
};

/// The two-operation CRC plan (carries its transform for evaluation).
struct CrcOpPlan {
  std::size_t m = 0;
  unsigned width = 0;
  DerbyTransform derby;
  MappedOp op1;  ///< state update; inputs [x_t(k) | u(M)], outputs x_t'(k)
  MappedOp op2;  ///< anti-transform; inputs x_t(k), outputs x(k)

  /// Functional evaluation through the *netlists*: transform the initial
  /// register, run op1 once per M-bit chunk, then op2. `bits.size()` must
  /// be a multiple of M (the processor-side serial head alignment is the
  /// engines' job; tests exercise it there). Returns the raw register.
  std::uint64_t run(const BitStream& bits, std::uint64_t init_register) const;
};

/// Build the Derby-form two-op CRC plan for generator g and look-ahead M.
CrcOpPlan build_derby_crc_ops(const Gf2Poly& g, std::size_t m,
                              const MapperOptions& opts = {});

/// Ablation: single direct look-ahead op ([A^M | B_M] mapped whole).
MappedOp build_direct_crc_op(const Gf2Poly& g, std::size_t m,
                             const MapperOptions& opts = {});

/// Single-op parallel scrambler; inputs [x_t(k) | u(M)], outputs
/// [x_t'(k) (fed back into registers) then y(M) (to the output ports);
/// out_bits counts only y]. Carries its own evaluation state mapping via
/// the transform returned in `derby` of the pair.
struct ScramblerOpPlan {
  std::size_t m = 0;
  DerbyTransform derby;
  MappedOp op;

  /// Scramble a whole stream through the netlist (length must be a
  /// multiple of M); `seed` packs the untransformed LFSR state.
  BitStream run(const BitStream& in, std::uint64_t seed) const;
};

ScramblerOpPlan build_scrambler_op(const Gf2Poly& g, std::size_t m,
                                   const MapperOptions& opts = {});

}  // namespace plfsr
