// Griffy-like textual operation format.
//
// §3 of the paper: "as well as most of the coarse and mid grained
// reconfigurable fabrics, PiCoGA programming is performed through an
// assembly-like language." This module provides the equivalent surface
// for this library: a small, line-oriented text form for XOR netlists,
// so operations can be stored in files, diffed, and hand-written in
// tests and docs. Grammar (one statement per line, ';' starts a comment):
//
//   op <name> inputs=<n> [fanin=<f>]
//   <id> = xor <sig> <sig> ...          ; define gate, <= f operands
//   out <sig> [<sig> ...]               ; append outputs ('zero' = 1'b0)
//
// Signals: in<k> (primary input k), n<k> (gate k, must be already
// defined), zero (only in 'out'). Printing then parsing (and vice versa)
// is the identity; tests round-trip every mapped CRC operation.
#pragma once

#include <string>

#include "mapper/xor_netlist.hpp"

namespace plfsr::griffy {

/// Parsed program: a named netlist.
struct Program {
  std::string name;
  XorNetlist netlist{0};
};

/// Render a netlist in the textual form above.
std::string print(const std::string& name, const XorNetlist& netlist);

/// Parse a program; throws std::invalid_argument with a line-numbered
/// message on any syntax or semantic error.
Program parse(const std::string& text);

}  // namespace plfsr::griffy
