#include "mapper/matrix_mapper.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace plfsr {

namespace {

using Row = std::vector<SignalId>;  // sorted signal list

Row sorted_intersection(const Row& a, const Row& b) {
  Row out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool contains_all(const Row& row, const Row& pattern) {
  return std::includes(row.begin(), row.end(), pattern.begin(), pattern.end());
}

/// Remove `pattern` from `row` and insert `repl`, keeping it sorted.
void substitute(Row& row, const Row& pattern, SignalId repl) {
  Row out;
  std::set_difference(row.begin(), row.end(), pattern.begin(), pattern.end(),
                      std::back_inserter(out));
  out.insert(std::upper_bound(out.begin(), out.end(), repl), repl);
  row = std::move(out);
}

/// Build a balanced XOR tree over `sigs`; returns the root signal.
SignalId build_tree(XorNetlist& nl, Row sigs) {
  if (sigs.empty()) return kZeroSignal;
  while (sigs.size() > 1) {
    Row next;
    std::size_t i = 0;
    while (i < sigs.size()) {
      const std::size_t remain = sigs.size() - i;
      if (remain == 1) {  // odd straggler passes through, no wasted gate
        next.push_back(sigs[i]);
        ++i;
      } else {
        const std::size_t take =
            std::min<std::size_t>(nl.max_fanin(), remain);
        next.push_back(nl.add_node(
            {sigs.begin() + static_cast<std::ptrdiff_t>(i),
             sigs.begin() + static_cast<std::ptrdiff_t>(i + take)}));
        i += take;
      }
    }
    sigs = std::move(next);
  }
  return sigs[0];
}

}  // namespace

std::size_t xor_tree_cells(std::size_t fanin, unsigned max_fanin) {
  std::size_t cells = 0;
  std::size_t n = fanin;
  while (n > 1) {
    std::size_t next = 0, i = 0;
    while (i < n) {
      const std::size_t remain = n - i;
      if (remain == 1) {
        ++next;
        ++i;
      } else {
        const std::size_t take = std::min<std::size_t>(max_fanin, remain);
        ++cells;
        ++next;
        i += take;
      }
    }
    n = next;
  }
  return cells;
}

std::vector<SignalId> map_matrix_into(XorNetlist& nl, const Gf2Matrix& m,
                                      std::size_t input_offset,
                                      const MapperOptions& opts,
                                      MapperStats* stats) {
  if (input_offset + m.cols() > nl.n_inputs())
    throw std::invalid_argument("map_matrix_into: columns exceed inputs");

  // Working rows over the growing signal universe.
  std::vector<Row> rows(m.rows());
  std::size_t baseline_cells = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m.get(r, c))
        rows[r].push_back(static_cast<SignalId>(input_offset + c));
    baseline_cells += xor_tree_cells(rows[r].size(), opts.max_fanin);
  }

  const std::size_t cells_before = nl.node_count();
  std::size_t shared = 0;
  if (opts.share_patterns) {
    for (;;) {
      // Find the pattern (pairwise row intersection, capped at max_fanin
      // elements) with the best extraction gain.
      Row best;
      long best_gain = 0;
      std::size_t best_occ = 0;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
          Row inter = sorted_intersection(rows[i], rows[j]);
          if (inter.size() < opts.min_pattern_size) continue;
          if (inter.size() > opts.max_fanin) inter.resize(opts.max_fanin);
          std::size_t occ = 0;
          long cells_saved = 0;
          for (const Row& row : rows) {
            if (!contains_all(row, inter)) continue;
            ++occ;
            // Exact per-row effect: |p| terms collapse into 1 signal.
            cells_saved += static_cast<long>(
                               xor_tree_cells(row.size(), opts.max_fanin)) -
                           static_cast<long>(xor_tree_cells(
                               row.size() - inter.size() + 1,
                               opts.max_fanin));
          }
          if (occ < opts.min_occurrences) continue;
          // The pattern costs its own tree once; gain is the exact cell
          // delta of this extraction (first-order — later extractions can
          // still interact, so the greedy loop re-evaluates every round).
          const long gain =
              cells_saved -
              static_cast<long>(xor_tree_cells(inter.size(), opts.max_fanin));
          if (gain > best_gain || (gain == best_gain && occ > best_occ)) {
            best = std::move(inter);
            best_gain = gain;
            best_occ = occ;
          }
        }
      }
      if (best.empty() || best_gain <= 0) break;
      const SignalId repl = nl.add_node(best);
      for (Row& row : rows)
        if (contains_all(row, best)) substitute(row, best, repl);
      ++shared;
    }
  }

  std::vector<SignalId> roots;
  roots.reserve(rows.size());
  for (Row& row : rows) roots.push_back(build_tree(nl, std::move(row)));

  if (stats) {
    stats->cells = nl.node_count() - cells_before;
    stats->depth = nl.depth();  // depth of the whole netlist so far
    stats->patterns_shared = shared;
    stats->cells_without_sharing = baseline_cells;
  }
  return roots;
}

XorNetlist map_matrix(const Gf2Matrix& m, const MapperOptions& opts,
                      MapperStats* stats) {
  XorNetlist nl(m.cols(), opts.max_fanin);
  const std::vector<SignalId> roots =
      map_matrix_into(nl, m, 0, opts, stats);
  for (SignalId r : roots) nl.add_output(r);
  if (stats) stats->depth = nl.depth();
  return nl;
}

}  // namespace plfsr
