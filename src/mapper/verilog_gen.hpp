// Verilog generation from mapped netlists — the RTL back end a released
// version of the paper's flow would ship (its ASIC comparator, the
// OpenCores UCRC, is distributed exactly this way). The same XOR10
// netlists that configure the PiCoGA simulator are emitted as
// synthesizable Verilog-2001:
//
//  * a combinational module per netlist (assign-per-gate, one wire per
//    intermediate signal), and
//  * a complete registered parallel-CRC core in the Derby form: the
//    companion state update clocked every cycle at II = 1, an `init`
//    load, and the anti-transformed checksum on a dedicated output —
//    structurally the circuit of the paper's Fig. 2 after the transform.
//
// Generation is deterministic: identical inputs produce identical text
// (tests diff against golden structural properties).
#pragma once

#include <string>

#include "gf2/gf2_poly.hpp"
#include "mapper/op_builder.hpp"
#include "mapper/xor_netlist.hpp"

namespace plfsr {

/// Emit a combinational module:
///   module <name>(input wire [n_inputs-1:0] in,
///                 output wire [n_outputs-1:0] out);
std::string emit_combinational_module(const std::string& name,
                                      const XorNetlist& netlist);

/// Emit the registered Derby-form CRC core for (g, M):
///   module <name>(clk, rst_n, init_load, init_value[k-1:0],
///                 chunk_valid, chunk[M-1:0], crc_raw[k-1:0]);
/// Internally: x_t register bank, the op1 netlist as next-state logic,
/// and the op2 (T) netlist combinationally producing crc_raw.
std::string emit_parallel_crc_module(const std::string& name,
                                     const Gf2Poly& g, std::size_t m,
                                     const MapperOptions& opts = {});

/// Emit the single-op parallel scrambler core for (g, M):
///   module <name>(clk, rst_n, seed_load, seed[k-1:0],
///                 in_valid, data_in[M-1:0], data_out[M-1:0]);
std::string emit_parallel_scrambler_module(const std::string& name,
                                           const Gf2Poly& g, std::size_t m,
                                           const MapperOptions& opts = {});

}  // namespace plfsr
