// XOR netlist — the intermediate form between a GF(2) matrix and a PiCoGA
// configuration.
//
// PiCoGA's logic cell evaluates a 10-input XOR in one cell (§4: "we
// decided to massively use the 10-bit XOR operation which can be
// implemented in a single logic cell"). A matrix-vector product over
// GF(2) therefore maps to a forest of XOR trees with fan-in <= 10; the
// number of cells and the tree depth (pipeline stages) are the resource
// and latency costs the design-space exploration trades off.
//
// The netlist is a DAG: signal ids 0..n_inputs-1 are primary inputs,
// n_inputs + i is the output of node i. Nodes are stored in topological
// order by construction (a node may only reference earlier signals).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "gf2/gf2_vec.hpp"

namespace plfsr {

using SignalId = std::uint32_t;

/// Sentinel for a constant-zero output (an all-zero matrix row).
inline constexpr SignalId kZeroSignal = 0xFFFFFFFF;

/// One XOR gate with fan-in 1..max_fanin.
struct XorNode {
  std::vector<SignalId> inputs;
};

/// Acyclic XOR network with designated outputs.
class XorNetlist {
 public:
  explicit XorNetlist(std::size_t n_inputs, unsigned max_fanin = 10);

  std::size_t n_inputs() const { return n_inputs_; }
  unsigned max_fanin() const { return max_fanin_; }
  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<XorNode>& nodes() const { return nodes_; }
  const std::vector<SignalId>& outputs() const { return outputs_; }

  /// Append a gate; inputs must be already-defined signals. Returns the
  /// new node's output signal id.
  SignalId add_node(std::vector<SignalId> inputs);

  /// Declare an output (a primary input, node output, or kZeroSignal).
  void add_output(SignalId s);

  /// Evaluate the network on an input vector (dimension n_inputs).
  Gf2Vec evaluate(const Gf2Vec& in) const;

  /// Logic depth of each signal (inputs at depth 0); the netlist depth is
  /// the max over outputs — the number of pipeline levels the op needs.
  unsigned depth() const;
  unsigned signal_depth(SignalId s) const;

  /// Gate count per depth level (level 1 = gates fed only by inputs...).
  std::vector<std::size_t> level_histogram() const;

  /// Depth counting only paths that originate at the marked inputs
  /// (mask[i] set for primary input i). Signals with no marked ancestor
  /// have depth 0 — they are feed-forward and can be pre-scheduled, so
  /// the returned value is the combinational depth of the *loop* when the
  /// mask marks the state inputs. The maximum is taken over outputs.
  unsigned depth_from(const std::vector<bool>& input_mask) const;

  /// Same, restricted to outputs [first, last): used to measure the depth
  /// of the state-feedback recurrence separately from feed-forward output
  /// logic (only the former bounds the initiation interval).
  unsigned depth_from(const std::vector<bool>& input_mask, std::size_t first,
                      std::size_t last) const;

 private:
  std::size_t n_inputs_;
  unsigned max_fanin_;
  std::vector<XorNode> nodes_;
  std::vector<SignalId> outputs_;
  std::vector<unsigned> node_depth_;  // cached per node
};

}  // namespace plfsr
