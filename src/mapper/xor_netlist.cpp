#include "mapper/xor_netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace plfsr {

XorNetlist::XorNetlist(std::size_t n_inputs, unsigned max_fanin)
    : n_inputs_(n_inputs), max_fanin_(max_fanin) {
  if (max_fanin < 2)
    throw std::invalid_argument("XorNetlist: max_fanin must be >= 2");
}

SignalId XorNetlist::add_node(std::vector<SignalId> inputs) {
  if (inputs.empty() || inputs.size() > max_fanin_)
    throw std::invalid_argument("XorNetlist::add_node: bad fan-in");
  const SignalId self = static_cast<SignalId>(n_inputs_ + nodes_.size());
  unsigned d = 0;
  for (SignalId s : inputs) {
    if (s >= self)
      throw std::invalid_argument("XorNetlist::add_node: forward reference");
    d = std::max(d, signal_depth(s));
  }
  node_depth_.push_back(d + 1);
  nodes_.push_back(XorNode{std::move(inputs)});
  return self;
}

void XorNetlist::add_output(SignalId s) {
  if (s != kZeroSignal && s >= n_inputs_ + nodes_.size())
    throw std::invalid_argument("XorNetlist::add_output: undefined signal");
  outputs_.push_back(s);
}

Gf2Vec XorNetlist::evaluate(const Gf2Vec& in) const {
  if (in.size() != n_inputs_)
    throw std::invalid_argument("XorNetlist::evaluate: input size mismatch");
  std::vector<bool> value(n_inputs_ + nodes_.size());
  for (std::size_t i = 0; i < n_inputs_; ++i) value[i] = in.get(i);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    bool v = false;
    for (SignalId s : nodes_[i].inputs) v ^= value[s];
    value[n_inputs_ + i] = v;
  }
  Gf2Vec out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    out.set(i, outputs_[i] == kZeroSignal ? false : value[outputs_[i]]);
  return out;
}

unsigned XorNetlist::signal_depth(SignalId s) const {
  if (s == kZeroSignal || s < n_inputs_) return 0;
  return node_depth_[s - n_inputs_];
}

unsigned XorNetlist::depth() const {
  unsigned d = 0;
  for (SignalId s : outputs_) d = std::max(d, signal_depth(s));
  return d;
}

unsigned XorNetlist::depth_from(const std::vector<bool>& input_mask) const {
  return depth_from(input_mask, 0, outputs_.size());
}

unsigned XorNetlist::depth_from(const std::vector<bool>& input_mask,
                                std::size_t first, std::size_t last) const {
  if (input_mask.size() != n_inputs_)
    throw std::invalid_argument("XorNetlist::depth_from: mask size mismatch");
  if (first > last || last > outputs_.size())
    throw std::invalid_argument("XorNetlist::depth_from: bad output range");
  // -1 encodes "independent of the marked inputs".
  std::vector<int> d(n_inputs_ + nodes_.size(), -1);
  for (std::size_t i = 0; i < n_inputs_; ++i)
    if (input_mask[i]) d[i] = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    int best = -1;
    for (SignalId s : nodes_[i].inputs) best = std::max(best, d[s]);
    d[n_inputs_ + i] = best < 0 ? -1 : best + 1;
  }
  int out = 0;
  for (std::size_t i = first; i < last; ++i)
    if (outputs_[i] != kZeroSignal) out = std::max(out, d[outputs_[i]]);
  return static_cast<unsigned>(std::max(out, 0));
}

std::vector<std::size_t> XorNetlist::level_histogram() const {
  std::vector<std::size_t> hist;
  for (unsigned d : node_depth_) {
    if (d > hist.size()) hist.resize(d, 0);
    ++hist[d - 1];
  }
  return hist;
}

}  // namespace plfsr
