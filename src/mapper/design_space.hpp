// Design-space exploration over the look-ahead factor M (§4: "the next
// step of our analysis is the selection of the look-ahead factor and the
// eventual partitioning on one or more PiCoGA operations, depending on
// both I/O bandwidth and computational resources available").
//
// The array-level constraints are those of the PiCoGA integrated in
// DREAM: 24 rows of 16 logic cells (one pipeline stage per row), 384
// primary-input bits, 128 output bits, a 4-context configuration cache,
// and a fixed 200 MHz clock. The exploration maps the Derby two-op CRC
// (and the single-op scrambler) for each candidate M, converts gate
// levels to rows, and reports feasibility — reproducing the paper's
// finding that "PiCoGA is able to elaborate up to 128 bit per cycle".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gf2/gf2_poly.hpp"
#include "mapper/op_builder.hpp"

namespace plfsr {

/// PiCoGA geometry and platform limits (defaults = DREAM's PiCoGA-III).
struct PicogaConstraints {
  std::size_t rows = 24;            ///< pipeline rows in the array
  std::size_t cells_per_row = 16;   ///< logic cells per row
  std::size_t max_in_bits = 384;    ///< primary input port width (12 x 32)
  std::size_t max_out_bits = 128;   ///< primary output port width (4 x 32)
  std::size_t contexts = 4;         ///< configuration cache layers
  double freq_mhz = 200.0;          ///< fixed working frequency

  std::size_t total_cells() const { return rows * cells_per_row; }
};

/// Row/latency estimate of one mapped op on the array: every gate level
/// occupies whole rows (a row is the unit of pipeline staging).
struct OpFit {
  std::size_t cells = 0;
  std::size_t rows = 0;      ///< sum over levels of ceil(level cells / 16)
  unsigned levels = 0;       ///< pipeline latency in cycles once full
  unsigned ii = 1;           ///< initiation interval (loop depth, >= 1)
  bool fits = false;
};

/// Place an op's level histogram onto the array.
OpFit fit_op(const MappedOp& op, const PicogaConstraints& c);

/// One evaluated design point of the CRC exploration.
struct CrcDesignPoint {
  std::size_t m = 0;
  OpFit op1, op2;
  std::size_t total_cells = 0;
  std::size_t total_rows = 0;
  bool feasible = false;         ///< both ops fit + I/O within limits
  std::string limiting_factor;   ///< "", or what broke ("cells", "io", ...)
  double peak_gbps = 0.0;        ///< M * f / II, the infinite-message rate
};

/// Evaluate the Derby two-op CRC mapping for each M in `ms`.
std::vector<CrcDesignPoint> explore_crc_design_space(
    const Gf2Poly& g, const std::vector<std::size_t>& ms,
    const PicogaConstraints& c = {}, const MapperOptions& opts = {});

/// Largest power-of-two M that is feasible (the paper's answer: 128).
std::size_t max_feasible_m(const Gf2Poly& g, const PicogaConstraints& c = {},
                           const MapperOptions& opts = {});

/// Scrambler design point (single op; outputs y count against the ports).
struct ScramblerDesignPoint {
  std::size_t m = 0;
  OpFit op;
  bool feasible = false;
  std::string limiting_factor;
  double peak_gbps = 0.0;
};

std::vector<ScramblerDesignPoint> explore_scrambler_design_space(
    const Gf2Poly& g, const std::vector<std::size_t>& ms,
    const PicogaConstraints& c = {}, const MapperOptions& opts = {});

/// Ablation 4 of DESIGN.md: complexity spread of T over different seed
/// vectors f (the paper "didn't find significant difference"). Returns
/// the mapped cell count of T for each of the first `count` unit vectors
/// that yield a valid transform.
std::vector<std::size_t> sweep_f_complexity(const Gf2Poly& g, std::size_t m,
                                            std::size_t count,
                                            const MapperOptions& opts = {});

}  // namespace plfsr
