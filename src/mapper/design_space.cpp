#include "mapper/design_space.hpp"

#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"

namespace plfsr {

OpFit fit_op(const MappedOp& op, const PicogaConstraints& c) {
  OpFit fit;
  fit.cells = op.netlist.node_count();
  for (std::size_t level_cells : op.netlist.level_histogram())
    fit.rows += (level_cells + c.cells_per_row - 1) / c.cells_per_row;
  fit.levels = op.netlist.depth();
  fit.ii = op.loop_depth > 0 ? op.loop_depth : 1;
  fit.fits = fit.rows <= c.rows && fit.cells <= c.total_cells();
  return fit;
}

std::vector<CrcDesignPoint> explore_crc_design_space(
    const Gf2Poly& g, const std::vector<std::size_t>& ms,
    const PicogaConstraints& c, const MapperOptions& opts) {
  std::vector<CrcDesignPoint> out;
  for (std::size_t m : ms) {
    CrcDesignPoint p;
    p.m = m;
    const CrcOpPlan plan = build_derby_crc_ops(g, m, opts);
    p.op1 = fit_op(plan.op1, c);
    p.op2 = fit_op(plan.op2, c);
    p.total_cells = p.op1.cells + p.op2.cells;
    p.total_rows = p.op1.rows + p.op2.rows;

    // The two ops live in different configuration contexts, so each must
    // fit the array alone; I/O per issue is the M input bits of op1 and
    // the k output bits of op2.
    p.feasible = true;
    if (!p.op1.fits || !p.op2.fits) {
      p.feasible = false;
      p.limiting_factor = "cells/rows";
    }
    if (plan.op1.in_bits > c.max_in_bits ||
        plan.op2.out_bits > c.max_out_bits) {
      p.feasible = false;
      p.limiting_factor =
          p.limiting_factor.empty() ? "io" : p.limiting_factor + "+io";
    }
    // The paper's platform-level bound: the DREAM memory subsystem feeds
    // the array at most max_out_bits (=128) bits per cycle of payload.
    if (m > c.max_out_bits) {
      p.feasible = false;
      p.limiting_factor = p.limiting_factor.empty()
                              ? "bandwidth"
                              : p.limiting_factor + "+bandwidth";
    }
    p.peak_gbps =
        static_cast<double>(m) * c.freq_mhz * 1e6 / p.op1.ii / 1e9;
    out.push_back(std::move(p));
  }
  return out;
}

std::size_t max_feasible_m(const Gf2Poly& g, const PicogaConstraints& c,
                           const MapperOptions& opts) {
  std::size_t best = 0;
  for (std::size_t m = 2; m <= 1024; m *= 2) {
    const auto pts = explore_crc_design_space(g, {m}, c, opts);
    if (pts[0].feasible) best = m;
  }
  return best;
}

std::vector<ScramblerDesignPoint> explore_scrambler_design_space(
    const Gf2Poly& g, const std::vector<std::size_t>& ms,
    const PicogaConstraints& c, const MapperOptions& opts) {
  std::vector<ScramblerDesignPoint> out;
  for (std::size_t m : ms) {
    ScramblerDesignPoint p;
    p.m = m;
    const ScramblerOpPlan plan = build_scrambler_op(g, m, opts);
    p.op = fit_op(plan.op, c);
    p.feasible = p.op.fits;
    if (!p.feasible) p.limiting_factor = "cells/rows";
    if (plan.op.in_bits > c.max_in_bits ||
        plan.op.out_bits > c.max_out_bits) {
      p.feasible = false;
      p.limiting_factor =
          p.limiting_factor.empty() ? "io" : p.limiting_factor + "+io";
    }
    p.peak_gbps =
        static_cast<double>(m) * c.freq_mhz * 1e6 / p.op.ii / 1e9;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::size_t> sweep_f_complexity(const Gf2Poly& g, std::size_t m,
                                            std::size_t count,
                                            const MapperOptions& opts) {
  const LinearSystem sys = make_crc_system(g);
  const LookAhead la(sys, m);
  const std::size_t k = sys.dim();
  std::vector<std::size_t> cells;
  for (std::size_t i = 0; i < k && cells.size() < count; ++i) {
    auto d = DerbyTransform::with_f(la, Gf2Vec::unit(k, i));
    if (!d) continue;
    MapperStats stats;
    map_matrix(d->t(), opts, &stats);
    cells.push_back(stats.cells);
  }
  return cells;
}

}  // namespace plfsr
