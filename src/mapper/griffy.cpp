#include "mapper/griffy.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace plfsr::griffy {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("griffy: line " + std::to_string(line) + ": " +
                              what);
}

std::string sig_name(const XorNetlist& nl, SignalId s) {
  if (s == kZeroSignal) return "zero";
  if (s < nl.n_inputs()) return "in" + std::to_string(s);
  return "n" + std::to_string(s - nl.n_inputs());
}

/// Parse "in<k>" / "n<k>" against the current definition horizon.
SignalId parse_sig(const std::string& tok, std::size_t n_inputs,
                   std::size_t nodes_defined, bool allow_zero,
                   std::size_t line) {
  if (tok == "zero") {
    if (!allow_zero) fail(line, "'zero' is only valid in 'out'");
    return kZeroSignal;
  }
  auto parse_index = [&](std::size_t offset) -> SignalId {
    const std::string digits = tok.substr(offset);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      fail(line, "bad signal '" + tok + "'");
    return static_cast<SignalId>(std::stoul(digits));
  };
  if (tok.rfind("in", 0) == 0) {
    const SignalId k = parse_index(2);
    if (k >= n_inputs) fail(line, "input out of range: " + tok);
    return k;
  }
  if (tok.rfind('n', 0) == 0) {
    const SignalId k = parse_index(1);
    if (k >= nodes_defined) fail(line, "use before definition: " + tok);
    return static_cast<SignalId>(n_inputs + k);
  }
  fail(line, "bad signal '" + tok + "'");
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::string clean = line;
  if (const auto c = clean.find(';'); c != std::string::npos)
    clean.resize(c);
  std::istringstream is(clean);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::string print(const std::string& name, const XorNetlist& nl) {
  std::ostringstream os;
  os << "op " << name << " inputs=" << nl.n_inputs()
     << " fanin=" << nl.max_fanin() << "\n";
  for (std::size_t i = 0; i < nl.node_count(); ++i) {
    os << "n" << i << " = xor";
    for (SignalId s : nl.nodes()[i].inputs) os << " " << sig_name(nl, s);
    os << "\n";
  }
  if (!nl.outputs().empty()) {
    os << "out";
    for (SignalId s : nl.outputs()) os << " " << sig_name(nl, s);
    os << "\n";
  }
  return os.str();
}

Program parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  bool header_seen = false;
  Program prog;
  std::size_t n_inputs = 0;

  while (std::getline(is, line)) {
    ++lineno;
    const std::vector<std::string> toks = tokens_of(line);
    if (toks.empty()) continue;

    if (toks[0] == "op") {
      if (header_seen) fail(lineno, "duplicate 'op' header");
      if (toks.size() < 3) fail(lineno, "op <name> inputs=<n> [fanin=<f>]");
      prog.name = toks[1];
      unsigned fanin = 10;
      bool have_inputs = false;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (toks[i].rfind("inputs=", 0) == 0) {
          n_inputs = std::stoul(toks[i].substr(7));
          have_inputs = true;
        } else if (toks[i].rfind("fanin=", 0) == 0) {
          fanin = static_cast<unsigned>(std::stoul(toks[i].substr(6)));
        } else {
          fail(lineno, "unknown attribute '" + toks[i] + "'");
        }
      }
      if (!have_inputs) fail(lineno, "missing inputs=<n>");
      prog.netlist = XorNetlist(n_inputs, fanin);
      header_seen = true;
      continue;
    }
    if (!header_seen) fail(lineno, "statement before 'op' header");

    if (toks[0] == "out") {
      for (std::size_t i = 1; i < toks.size(); ++i)
        prog.netlist.add_output(parse_sig(toks[i], n_inputs,
                                          prog.netlist.node_count(), true,
                                          lineno));
      continue;
    }

    // n<k> = xor <sig>...
    if (toks.size() < 4 || toks[1] != "=" || toks[2] != "xor")
      fail(lineno, "expected '<id> = xor <sig>...'");
    const std::string expect = "n" + std::to_string(prog.netlist.node_count());
    if (toks[0] != expect)
      fail(lineno, "gates must be defined in order; expected " + expect);
    std::vector<SignalId> ins;
    for (std::size_t i = 3; i < toks.size(); ++i)
      ins.push_back(parse_sig(toks[i], n_inputs, prog.netlist.node_count(),
                              false, lineno));
    if (ins.empty()) fail(lineno, "xor needs at least one operand");
    if (ins.size() > prog.netlist.max_fanin())
      fail(lineno, "fan-in exceeds the declared cell width");
    prog.netlist.add_node(std::move(ins));
  }
  if (!header_seen) throw std::invalid_argument("griffy: empty program");
  return prog;
}

}  // namespace plfsr::griffy
