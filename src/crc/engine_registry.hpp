// Capability-aware runtime registry of CRC engines — the software
// analogue of PiCoGA's multi-context configuration cache: a stable name
// ("clmul", "slicing8", ...) maps to a factory that loads the matching
// configuration (tables, fold constants, look-ahead matrices) for a
// given CrcSpec and returns it behind the uniform CrcEngineHandle.
// Where the paper reconfigures the array per standard, the host looks a
// personality up by name and gets the same streaming contract back.
//
// Each entry carries, besides its factory:
//  - available(): a runtime capability gate (CPUID probe via
//    support/cpu_features plus the PLFSR_FORCE_PORTABLE veto) — e.g.
//    "clmul" is only available where PCLMULQDQ can actually run;
//  - supports(spec): the engine's spec envelope — e.g. the slicing
//    engines only take reflected specs, Derby needs a squarefree
//    generator;
//  - preference: the rank best_for() uses, ordered by measured
//    throughput of the engines on this codebase's benches.
//
// best_for(spec) returns the highest-preference engine that is both
// available and supports the spec. Setting the environment variable
// PLFSR_ENGINE (mirroring PLFSR_FORCE_PORTABLE: read per call, not
// cached) overrides the policy with an explicit engine name — unknown
// names throw, as does naming an engine that cannot serve the spec.
//
// Adding an engine is one register_engine() call (see builtin
// registration in engine_registry.cpp); everything above the registry —
// the shared audit in tests/crc_engines_test.cpp, bench_crc_engines,
// bench_pipeline, the examples — enumerates it, so a newly registered
// engine is automatically audited, benched and regression-gated.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine.hpp"

namespace plfsr {

/// One registered engine: a stable name plus its factory and gates.
struct EngineInfo {
  std::string name;         ///< stable registry key, e.g. "slicing8"
  std::string description;  ///< one-line human description
  /// Runtime capability gate (CPU features + env vetoes). Evaluated per
  /// call so tests can flip PLFSR_FORCE_PORTABLE between queries.
  std::function<bool()> available;
  /// Spec envelope: can this engine be constructed for `spec`?
  std::function<bool(const CrcSpec&)> supports;
  /// Build the engine configured for `spec`.
  std::function<CrcEngineHandle(const CrcSpec&)> make;
  /// best_for() rank; higher wins. Ordered by measured throughput.
  int preference = 0;
};

/// Name-keyed engine catalogue. The process-wide instance() comes with
/// every built-in engine registered; register_engine() appends more.
class EngineRegistry {
 public:
  /// The shared registry, built-ins pre-registered. Not synchronized:
  /// register additional engines during start-up, before concurrent use.
  static EngineRegistry& instance();

  /// An empty registry (for tests building custom catalogues).
  EngineRegistry() = default;

  /// Register an engine under info.name. Throws std::invalid_argument on
  /// an empty or duplicate name or missing callbacks.
  void register_engine(EngineInfo info);

  /// All registered names, in registration order.
  std::vector<std::string> names() const;

  /// Names whose capability gate passes right now.
  std::vector<std::string> available_names() const;

  /// Entry lookup; nullptr if the name is unknown.
  const EngineInfo* find(const std::string& name) const;

  /// True iff `name` is registered, currently available, and claims
  /// support for `spec`.
  bool supports(const std::string& name, const CrcSpec& spec) const;

  /// Construct engine `name` for `spec`. Throws std::invalid_argument on
  /// an unknown name (the message lists the known ones) and
  /// std::runtime_error if the engine does not support the spec.
  CrcEngineHandle make(const std::string& name, const CrcSpec& spec) const;

  /// make() memoized on (name, spec parameters): the first call builds
  /// the engine (tables, fold/reduction constants, look-ahead matrices),
  /// later calls share that instance through the handle's shared_ptr —
  /// engines are immutable and concurrency-safe, so sharing is free.
  /// This is what lets a short-frame path construct "its" engine per
  /// batch without paying per-construction setup. Thread-safe, unlike
  /// register_engine(). Same error behaviour as make().
  CrcEngineHandle make_cached(const std::string& name,
                              const CrcSpec& spec) const;

  /// The best available engine for `spec` under the preference policy,
  /// or the engine named by PLFSR_ENGINE if that is set (unknown /
  /// unsuitable names throw). Throws std::runtime_error if no engine
  /// can serve the spec (cannot happen for catalogue specs: "serial"
  /// and "table" support everything and are always available).
  CrcEngineHandle best_for(const CrcSpec& spec) const;

  /// The name best_for() would pick for `spec`, without constructing the
  /// engine — same override/policy/error behaviour. This is what lets a
  /// long-lived service combine the policy with make_cached():
  /// `make_cached(best_name_for(spec), spec)` resolves the policy per
  /// call (so env flips are honoured) but builds each engine once.
  std::string best_name_for(const CrcSpec& spec) const;

 private:
  std::vector<EngineInfo> entries_;
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<std::string, CrcEngineHandle> cache_;
};

/// Value of the PLFSR_ENGINE override ("" when unset/empty). Read from
/// the environment on every call, like force_portable().
std::string engine_override();

}  // namespace plfsr
