#include "crc/serial_crc.hpp"

namespace plfsr {

std::uint64_t serial_crc_bits(const BitStream& bits, unsigned width,
                              std::uint64_t poly,
                              std::uint64_t init_register) {
  const std::uint64_t top = std::uint64_t{1} << (width - 1);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::uint64_t r = init_register & mask;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool fb = ((r & top) != 0) ^ bits.get(i);
    r = (r << 1) & mask;
    if (fb) r ^= poly;
  }
  return r;
}

std::uint64_t serial_crc(const CrcSpec& spec,
                         std::span<const std::uint8_t> bytes) {
  const BitStream bits = spec.message_bits(bytes);
  const std::uint64_t raw =
      serial_crc_bits(bits, spec.width, spec.poly, spec.init);
  return spec.finalize(raw);
}

}  // namespace plfsr
