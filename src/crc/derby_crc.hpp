// Derby-form parallel CRC — the engine the paper maps onto PiCoGA (§4):
//
//   op1 (every M bits):   x_t(n+M) = A_Mt x_t(n) + B_Mt u_M(n)
//   op2 (once, at end):   x       = T x_t            ("anti-transform")
//
// A_Mt is companion, so op1's feedback loop is trivially shallow; all the
// density lives in B_Mt and T, which are feed-forward. This class is the
// bit-exact software model of that two-operation partition; the PiCoGA
// mapping itself lives in src/mapper + src/picoga.
#pragma once

#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "lfsr/derby.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Derby-transformed CRC engine for one (spec, M) pair.
class DerbyCrc {
 public:
  DerbyCrc(const CrcSpec& spec, std::size_t m);

  const CrcSpec& spec() const { return spec_; }
  std::size_t m() const { return derby_.m(); }
  const DerbyTransform& transform() const { return derby_; }

  /// Raw final register after feeding `bits` from `init_register`.
  std::uint64_t raw_bits(const BitStream& bits,
                         std::uint64_t init_register) const;

  std::uint64_t compute_bits(const BitStream& bits) const;
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

 private:
  CrcSpec spec_;
  LinearSystem sys_;
  LookAhead la_;
  DerbyTransform derby_;
};

}  // namespace plfsr
