// Byte-wise table CRC (Sarwate) — the paper's Table 1 baseline: the "fast
// software CRC implementation on a RISC processor" in the style of
// Albertengo & Sisto [8], one 256-entry lookup plus shift/XOR per byte.
//
// The reflected variant keeps the register bit-reversed (the usual
// software trick for Ethernet CRC-32) so the inner loop is
// `crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)`.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "crc/engine.hpp"

namespace plfsr {

/// Precomputed one-byte-at-a-time engine for an arbitrary CrcSpec.
class TableCrc {
 public:
  explicit TableCrc(const CrcSpec& spec);

  const CrcSpec& spec() const { return spec_; }

  /// Finalized CRC of a byte buffer.
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Streaming interface: `state` starts at `initial_state()`, absorb
  /// buffers, then `finalize(state)`.
  std::uint64_t initial_state() const;
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const;
  std::uint64_t finalize(std::uint64_t state) const;

  /// Batch absorb, states[i] = absorb(states[i], frames[i]): the lookup
  /// chains of up to 8 frames run round-robin, so the per-byte table
  /// latency of one frame hides behind the others' independent chains.
  /// ClmulCrc's batch path also uses this for its final reductions.
  void absorb_many(std::span<std::uint64_t> states,
                   std::span<const FrameView> frames) const;

  /// Engine state <-> raw register (bit i = coefficient of x^i), the
  /// orientation-free representation the shard-combine operator works in.
  /// The reflected implementation keeps the register bit-reversed; the
  /// aligned one keeps it shifted up by the sub-byte alignment.
  std::uint64_t raw_register(std::uint64_t state) const;
  std::uint64_t state_from_raw(std::uint64_t raw) const;

  /// Direct table access (the slicing engine builds on it).
  const std::array<std::uint64_t, 256>& table() const { return table_; }

 private:
  CrcSpec spec_;
  unsigned align_ = 0;  ///< left-alignment for non-reflected sub-byte widths
  std::uint64_t init_state_ = 0;  ///< cached initial_state()
  std::array<std::uint64_t, 256> table_{};
};

}  // namespace plfsr
