#include "crc/crc_combine.hpp"

#include "gf2/gf2_matrix.hpp"
#include "gf2/gf2_poly.hpp"

namespace plfsr {

CrcCombine::CrcCombine(const CrcSpec& spec)
    : spec_(spec),
      adv_(poly_mult_matrix(Gf2Poly::x_pow(1), spec.generator())) {}

std::uint64_t CrcCombine::advance_bits(std::uint64_t raw,
                                       std::uint64_t n_bits) const {
  return adv_.advance(raw, n_bits);
}

std::uint64_t CrcCombine::advance(std::uint64_t raw,
                                  std::uint64_t n_bytes) const {
  return advance_bits(raw, n_bytes << 3);
}

std::uint64_t CrcCombine::combine(std::uint64_t raw_a, std::uint64_t raw_b,
                                  std::uint64_t len_b_bytes) const {
  return advance(raw_a, len_b_bytes) ^ (raw_b & spec_.mask());
}

}  // namespace plfsr
