#include "crc/crc_combine.hpp"

#include <bit>

#include "gf2/gf2_matrix.hpp"
#include "gf2/gf2_poly.hpp"

namespace plfsr {

namespace {

std::uint64_t apply(const std::array<std::uint64_t, 64>& cols,
                    std::uint64_t v) {
  std::uint64_t y = 0;
  while (v) {
    y ^= cols[static_cast<std::size_t>(std::countr_zero(v))];
    v &= v - 1;
  }
  return y;
}

}  // namespace

CrcCombine::CrcCombine(const CrcSpec& spec) : spec_(spec) {
  const Gf2Poly g = spec.generator();
  // Successive squaring in the matrix domain: start at the companion
  // matrix (multiplication by x) and square 63 times.
  Gf2Matrix m = poly_mult_matrix(Gf2Poly::x_pow(1), g);
  for (auto& level : pow_) {
    for (unsigned j = 0; j < spec_.width; ++j)
      level[j] = m.column(j).to_word();
    m = m * m;
  }
}

std::uint64_t CrcCombine::advance_bits(std::uint64_t raw,
                                       std::uint64_t n_bits) const {
  raw &= spec_.mask();
  for (std::size_t i = 0; n_bits != 0; n_bits >>= 1, ++i)
    if (n_bits & 1) raw = apply(pow_[i], raw);
  return raw;
}

std::uint64_t CrcCombine::advance(std::uint64_t raw,
                                  std::uint64_t n_bytes) const {
  return advance_bits(raw, n_bytes << 3);
}

std::uint64_t CrcCombine::combine(std::uint64_t raw_a, std::uint64_t raw_b,
                                  std::uint64_t len_b_bytes) const {
  return advance(raw_a, len_b_bytes) ^ (raw_b & spec_.mask());
}

}  // namespace plfsr
