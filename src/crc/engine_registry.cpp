#include "crc/engine_registry.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "crc/clmul_crc.hpp"
#include "crc/derby_crc.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "crc/wide_table_crc.hpp"
#include "support/cpu_features.hpp"

namespace plfsr {
namespace {

// Look-ahead / chunk width for the matrix-family engines. Power-of-two
// M: squaring is a field automorphism, so it preserves the minimal
// polynomial of A — the condition Derby's transform needs on top of a
// squarefree generator (see tests/crc_engines_test.cpp).
constexpr std::size_t kDefaultM = 32;

/// Streaming adapter over the bit-serial reference (serial_crc_bits is
/// a pair of free functions, not a class). The state IS the raw
/// register; reflection lives in CrcSpec::message_bits, so byte-aligned
/// chunked absorption is exact from any register value — the same
/// convention as MatrixCrc/GfmacCrc/WideTableCrc.
class SerialEngine {
 public:
  explicit SerialEngine(const CrcSpec& spec) : spec_(spec) {}

  const CrcSpec& spec() const { return spec_; }
  std::uint64_t initial_state() const { return spec_.init; }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const {
    return serial_crc_bits(spec_.message_bits(bytes), spec_.width,
                           spec_.poly, state);
  }
  std::uint64_t finalize(std::uint64_t state) const {
    return spec_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const { return state; }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return raw & spec_.mask();
  }

 private:
  CrcSpec spec_;
};

/// Streaming adapter over DerbyCrc: raw_bits() continues from any
/// register value (serial head alignment + transformed bulk), which is
/// exactly the absorb contract in raw-register convention.
class DerbyEngine {
 public:
  explicit DerbyEngine(const CrcSpec& spec) : engine_(spec, kDefaultM) {}

  const CrcSpec& spec() const { return engine_.spec(); }
  std::uint64_t initial_state() const { return spec().init; }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const {
    return engine_.raw_bits(spec().message_bits(bytes), state);
  }
  std::uint64_t finalize(std::uint64_t state) const {
    return spec().finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const { return state; }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return raw & spec().mask();
  }

 private:
  DerbyCrc engine_;
};

bool always() { return true; }
bool any_spec(const CrcSpec&) { return true; }
bool same_reflection(const CrcSpec& s) {
  return s.reflect_in == s.reflect_out;
}
bool reflected(const CrcSpec& s) { return s.reflect_in && s.reflect_out; }

void register_builtins(EngineRegistry& reg) {
  // Preference values are ordered by measured throughput on the repo's
  // benches (BENCH_crc_engines.json); ties in capability go to the
  // faster engine. "table" is the universal always-available floor
  // above the bit-serial reference.
  reg.register_engine(
      {"clmul", "4-lane PCLMULQDQ folding over 64-byte blocks",
       clmul_allowed, same_reflection,
       [](const CrcSpec& s) {
         return CrcEngineHandle(ClmulCrc(s), "clmul");
       },
       100});
  reg.register_engine(
      {"slicing8", "slicing-by-8 table engine (reflected specs)", always,
       reflected,
       [](const CrcSpec& s) {
         return CrcEngineHandle(SlicingBy8Crc(s), "slicing8");
       },
       90});
  reg.register_engine(
      {"slicing4", "slicing-by-4 table engine (reflected specs)", always,
       reflected,
       [](const CrcSpec& s) {
         return CrcEngineHandle(SlicingBy4Crc(s), "slicing4");
       },
       80});
  reg.register_engine(
      {"table", "byte-wise Sarwate table engine", always, same_reflection,
       [](const CrcSpec& s) {
         return CrcEngineHandle(TableCrc(s), "table");
       },
       70});
  reg.register_engine(
      {"wide-table", "W-bit look-ahead table engine (W = 8)", always,
       any_spec,
       [](const CrcSpec& s) {
         return CrcEngineHandle(WideTableCrc(s, 8), "wide-table");
       },
       60});
  reg.register_engine(
      {"derby", "Derby-transformed M-bit parallel engine (M = 32)", always,
       // A repeated factor in g makes every even power of A derogatory;
       // Derby's transform then provably does not exist (CRC-64/ECMA).
       [](const CrcSpec& s) { return s.generator().is_squarefree(); },
       [](const CrcSpec& s) {
         return CrcEngineHandle(DerbyEngine(s), "derby");
       },
       50});
  reg.register_engine(
      {"matrix", "direct M-bit look-ahead engine (M = 32)", always,
       any_spec,
       [](const CrcSpec& s) {
         return CrcEngineHandle(MatrixCrc(s, kDefaultM), "matrix");
       },
       40});
  reg.register_engine(
      {"gfmac", "GFMAC chunked engine, Horner order (M = 32)", always,
       any_spec,
       [](const CrcSpec& s) {
         return CrcEngineHandle(GfmacCrc(s, kDefaultM), "gfmac");
       },
       30});
  reg.register_engine(
      {"serial", "bit-serial reference recursion", always, any_spec,
       [](const CrcSpec& s) {
         return CrcEngineHandle(SerialEngine(s), "serial");
       },
       10});
}

}  // namespace

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry* reg = [] {
    auto* r = new EngineRegistry;
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void EngineRegistry::register_engine(EngineInfo info) {
  if (info.name.empty())
    throw std::invalid_argument("EngineRegistry: empty engine name");
  if (!info.available || !info.supports || !info.make)
    throw std::invalid_argument("EngineRegistry: engine '" + info.name +
                                "' is missing a callback");
  if (find(info.name) != nullptr)
    throw std::invalid_argument("EngineRegistry: duplicate engine name '" +
                                info.name + "'");
  entries_.push_back(std::move(info));
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const EngineInfo& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> EngineRegistry::available_names() const {
  std::vector<std::string> out;
  for (const EngineInfo& e : entries_)
    if (e.available()) out.push_back(e.name);
  return out;
}

const EngineInfo* EngineRegistry::find(const std::string& name) const {
  for (const EngineInfo& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

bool EngineRegistry::supports(const std::string& name,
                              const CrcSpec& spec) const {
  const EngineInfo* e = find(name);
  return e != nullptr && e->available() && e->supports(spec);
}

CrcEngineHandle EngineRegistry::make(const std::string& name,
                                     const CrcSpec& spec) const {
  const EngineInfo* e = find(name);
  if (e == nullptr) {
    std::string known;
    for (const EngineInfo& k : entries_)
      known += (known.empty() ? "" : ", ") + k.name;
    throw std::invalid_argument("EngineRegistry: unknown engine '" + name +
                                "' (known: " + known + ")");
  }
  if (!e->supports(spec))
    throw std::runtime_error("EngineRegistry: engine '" + name +
                             "' does not support spec " + spec.name);
  return e->make(spec);
}

CrcEngineHandle EngineRegistry::make_cached(const std::string& name,
                                            const CrcSpec& spec) const {
  // Key on the numeric parameters, not spec.name: two specs with the
  // same label but different polynomials must not share an engine.
  std::string key = name;
  key += '|';
  key += std::to_string(spec.width) + '|' + std::to_string(spec.poly) + '|' +
         std::to_string(spec.init) + '|' + std::to_string(spec.xorout) +
         '|' + (spec.reflect_in ? '1' : '0') +
         (spec.reflect_out ? '1' : '0');
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Construct outside the lock (construction can be slow; make() also
  // throws on unknown/unsupported, which must not poison the cache).
  CrcEngineHandle handle = make(name, spec);
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.try_emplace(std::move(key), std::move(handle)).first->second;
}

CrcEngineHandle EngineRegistry::best_for(const CrcSpec& spec) const {
  const std::string forced = engine_override();
  if (!forced.empty()) {
    // make() gives the unknown-name/unsupported-spec diagnostics; an
    // explicitly forced engine must additionally pass its capability
    // gate — a vetoed override is a configuration error, not a policy
    // hint to fall through.
    const EngineInfo* e = find(forced);
    if (e != nullptr && !e->available())
      throw std::runtime_error("EngineRegistry: PLFSR_ENGINE=" + forced +
                               " is not available on this host (capability "
                               "gate failed)");
    return make(forced, spec);
  }

  const EngineInfo* best = nullptr;
  for (const EngineInfo& e : entries_)
    if ((best == nullptr || e.preference > best->preference) &&
        e.available() && e.supports(spec))
      best = &e;
  if (best == nullptr)
    throw std::runtime_error(
        "EngineRegistry: no available engine supports spec " + spec.name);
  return best->make(spec);
}

std::string EngineRegistry::best_name_for(const CrcSpec& spec) const {
  const std::string forced = engine_override();
  if (!forced.empty()) {
    const EngineInfo* e = find(forced);
    if (e == nullptr) {
      std::string known;
      for (const EngineInfo& k : entries_)
        known += (known.empty() ? "" : ", ") + k.name;
      throw std::invalid_argument("EngineRegistry: unknown engine '" +
                                  forced + "' (known: " + known + ")");
    }
    if (!e->available())
      throw std::runtime_error("EngineRegistry: PLFSR_ENGINE=" + forced +
                               " is not available on this host (capability "
                               "gate failed)");
    if (!e->supports(spec))
      throw std::runtime_error("EngineRegistry: engine '" + forced +
                               "' does not support spec " + spec.name);
    return forced;
  }
  const EngineInfo* best = nullptr;
  for (const EngineInfo& e : entries_)
    if ((best == nullptr || e.preference > best->preference) &&
        e.available() && e.supports(spec))
      best = &e;
  if (best == nullptr)
    throw std::runtime_error(
        "EngineRegistry: no available engine supports spec " + spec.name);
  return best->name;
}

std::string engine_override() {
  const char* v = std::getenv("PLFSR_ENGINE");
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace plfsr
