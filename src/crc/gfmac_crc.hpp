// GFMAC (Galois-field multiply-accumulate) chunked CRC — the method of
// Roy [9] and Ji & Killian [10] the paper reviews for customizable
// processors (§2):
//
//   CRC[A(x)] = (A(x) x^k) mod g(x) = sum_i (W_i(x) * beta_i) mod g(x)
//
// where the message polynomial is split into M-bit chunks W_i and
// beta_i = x^{(position of W_i from the message end) + k} mod g(x) are
// precomputable constants depending only on message length, M and g.
// Each W_i * beta_i product is one GFMAC; a processor with U GFMAC units
// computes U chunks per issue round ([10] reports 2-3 cycles for a
// 128-bit message with 16 units at 200 MHz).
//
// Two evaluation orders are provided: the Horner recurrence (one GFMAC in
// sequence — what a single-MAC DSP would run) and the fully parallel
// sum-of-products (the multi-unit custom processor), plus the cycle model
// used by the Table 1 context.
#pragma once

#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "gf2/gf2_poly.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// GFMAC chunked CRC engine for one (spec, M) pair.
class GfmacCrc {
 public:
  GfmacCrc(const CrcSpec& spec, std::size_t m);

  const CrcSpec& spec() const { return spec_; }
  std::size_t m() const { return m_; }

  /// Raw final register via the Horner recurrence
  /// R <- (R * x^len + W(x) * x^k) mod g, one chunk at a time.
  std::uint64_t raw_bits_horner(const BitStream& bits,
                                std::uint64_t init_register) const;

  /// Raw final register via the parallel sum  sum_i W_i * beta_i
  /// (plus init * x^N), reduced once at the end — the multi-GFMAC order.
  std::uint64_t raw_bits_parallel(const BitStream& bits,
                                  std::uint64_t init_register) const;

  std::uint64_t compute_bits(const BitStream& bits) const;
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Byte-streaming interface shared with the table engines: the state IS
  /// the raw register, and a chunk is absorbed with the Horner recurrence
  /// (the single-GFMAC order, which continues from any register value).
  /// Makes the engine usable under ParallelCrc and the pipeline CRC stage.
  std::uint64_t initial_state() const { return spec_.init; }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const {
    return raw_bits_horner(spec_.message_bits(bytes), state);
  }
  std::uint64_t finalize(std::uint64_t state) const {
    return spec_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const { return state; }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return raw & spec_.mask();
  }

 private:
  CrcSpec spec_;
  std::size_t m_;
  Gf2Poly g_;
  Gf2Poly x_m_mod_g_;  // x^M mod g, the Horner step constant
};

/// Cycle model of a custom processor with `units` GFMAC units running the
/// parallel order on an N-bit message with M-bit chunks: one issue round
/// per ceil(chunks/units), plus a log2 XOR-reduction round. Reproduces the
/// "2-3 cycles for 128 bits with 16 GFMACs" reference point of [10].
std::uint64_t gfmac_cycles(std::uint64_t n_bits, std::size_t m,
                           std::size_t units);

}  // namespace plfsr
