#include "crc/matrix_crc.hpp"

namespace plfsr {

MatrixCrc::MatrixCrc(const CrcSpec& spec, std::size_t m)
    : spec_(spec),
      sys_(make_crc_system(spec.generator())),
      la_(sys_, m) {}

std::uint64_t MatrixCrc::raw_bits(const BitStream& bits,
                                  std::uint64_t init_register) const {
  Gf2Vec x = Gf2Vec::from_word(spec_.width, init_register);
  const std::size_t m = la_.m();
  const std::size_t head = bits.size() % m;
  std::size_t pos = 0;
  for (; pos < head; ++pos) sys_.step(x, bits.get(pos));
  for (; pos < bits.size(); pos += m)
    la_.step_state(x, chunk_to_vec(bits, pos, m));
  return x.to_word();
}

std::uint64_t MatrixCrc::compute_bits(const BitStream& bits) const {
  return spec_.finalize(raw_bits(bits, spec_.init));
}

std::uint64_t MatrixCrc::compute(std::span<const std::uint8_t> bytes) const {
  return compute_bits(spec_.message_bits(bytes));
}

}  // namespace plfsr
