// IEEE 802.3 frame-check-sequence helpers — the paper's concrete test
// case. The FCS is the reflected CRC-32 of the frame (destination address
// through payload), appended little-endian-byte-first so the receiver can
// validate by checking the well-known residue.
//
// The Ethernet message-length window quoted in the paper's Fig. 4 —
// 368 to 12 144 bits — is the CRC-covered span of minimum (46-byte
// payload) through maximum (1500-byte payload) untagged frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace plfsr::ethernet {

/// CRC-covered length of the minimum Ethernet frame, in bits.
inline constexpr std::uint64_t kMinFrameBits = 368;
/// CRC-covered length of the maximum (untagged) Ethernet frame, in bits.
inline constexpr std::uint64_t kMaxFrameBits = 12144;

/// The CRC-32 residue of (frame || FCS): constant for any valid frame.
inline constexpr std::uint32_t kResidue = 0x2144DF1C;

/// FCS of the frame bytes (CRC-32/ETHERNET).
std::uint32_t fcs(std::span<const std::uint8_t> frame);

/// Frame with the 4 FCS bytes appended in transmission order.
std::vector<std::uint8_t> append_fcs(std::span<const std::uint8_t> frame);

/// True iff the trailing 4 bytes are the valid FCS of the rest.
bool verify(std::span<const std::uint8_t> frame_with_fcs);

/// Build a well-formed synthetic frame: 6+6 byte addresses, 2-byte
/// EtherType, `payload_len` pseudo-random payload bytes (seeded), FCS
/// appended. payload_len is clamped to [46, 1500].
std::vector<std::uint8_t> make_test_frame(std::size_t payload_len,
                                          std::uint64_t seed);

}  // namespace plfsr::ethernet
