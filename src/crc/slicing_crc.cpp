#include "crc/slicing_crc.hpp"

#include <stdexcept>

namespace plfsr {

template <unsigned Slices>
SlicingCrc<Slices>::SlicingCrc(const CrcSpec& spec)
    : spec_(spec), base_(spec) {
  if (!spec.reflect_in || !spec.reflect_out)
    throw std::invalid_argument("SlicingCrc: reflected specs only");
  // tables_[0] is the plain byte table; tables_[n][b] advances the
  // contribution of a byte n positions further from the end:
  // T[n][b] = T[0][T[n-1][b] & 0xFF] ^ (T[n-1][b] >> 8).
  tables_[0] = base_.table();
  for (unsigned n = 1; n < Slices; ++n)
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint64_t prev = tables_[n - 1][b];
      tables_[n][b] = tables_[0][prev & 0xFF] ^ (prev >> 8);
    }
}

template <unsigned Slices>
std::uint64_t SlicingCrc<Slices>::initial_state() const {
  return base_.initial_state();
}

template <unsigned Slices>
std::uint64_t SlicingCrc<Slices>::absorb(
    std::uint64_t state, std::span<const std::uint8_t> bytes) const {
  const std::uint8_t* p = bytes.data();
  std::size_t len = bytes.size();
  while (len >= Slices) {
    // XOR the register into the first bytes of the block, then look every
    // byte up in the table matching its distance from the block end.
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < Slices; ++i) {
      std::uint8_t byte = p[i];
      if (i < 8) byte = static_cast<std::uint8_t>(byte ^ (state >> (8 * i)));
      acc ^= tables_[Slices - 1 - i][byte];
    }
    // Any register bytes beyond the block length (CRC-64 with Slices == 4)
    // must be carried forward explicitly. Guarded at compile time: for
    // Slices == 8 the shift would be the full word width.
    if constexpr (8 * Slices < 64) {
      if (spec_.width > 8 * Slices) acc ^= state >> (8 * Slices);
    }
    state = acc;
    p += Slices;
    len -= Slices;
  }
  return base_.absorb(state, {p, len});
}

template <unsigned Slices>
std::uint64_t SlicingCrc<Slices>::finalize(std::uint64_t state) const {
  return base_.finalize(state);
}

template <unsigned Slices>
std::uint64_t SlicingCrc<Slices>::compute(
    std::span<const std::uint8_t> bytes) const {
  return finalize(absorb(initial_state(), bytes));
}

template class SlicingCrc<4>;
template class SlicingCrc<8>;

}  // namespace plfsr
