// Rocksoft-style CRC parameter model.
//
// A CRC standard is the generator polynomial plus framing conventions:
// initial register value, final XOR, and whether input bytes / the final
// register are bit-reflected (Ethernet is reflected; MPEG-2 uses the same
// polynomial non-reflected — the paper notes the two share g(x)). Every
// engine in this module takes a CrcSpec so the same parallelization code
// covers all ~25 standards the paper's introduction mentions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gf2/gf2_poly.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Full parameterisation of a CRC standard (width <= 64).
struct CrcSpec {
  std::string name;
  unsigned width = 0;        ///< register size k = deg g
  std::uint64_t poly = 0;    ///< g(x) low coefficients (top bit implicit)
  std::uint64_t init = 0;    ///< initial register contents
  bool reflect_in = false;   ///< feed each input byte LSB-first
  bool reflect_out = false;  ///< bit-reverse the final register
  std::uint64_t xorout = 0;  ///< final XOR
  std::uint64_t check = 0;   ///< CRC of ASCII "123456789" (for validation)

  /// g(x) with the implicit top bit restored.
  Gf2Poly generator() const;

  /// All-ones mask for the register width.
  std::uint64_t mask() const {
    return width == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << width) - 1;
  }

  /// Message bytes -> bit stream in this spec's processing order.
  BitStream message_bits(std::span<const std::uint8_t> bytes) const;

  /// Map the raw final register (normal orientation, x^i in bit i...
  /// precisely: bit i = coefficient of x^i) to the spec's reported value.
  std::uint64_t finalize(std::uint64_t raw_register) const;
};

/// Reverse the low `width` bits of v.
std::uint64_t reflect_bits(std::uint64_t v, unsigned width);

/// The standard catalogue entries (check values from the public CRC
/// catalogue; every engine is tested against them).
namespace crcspec {
CrcSpec crc5_usb();
CrcSpec crc7_mmc();
CrcSpec crc8_smbus();
CrcSpec crc8_maxim();
CrcSpec crc15_can();
CrcSpec crc16_xmodem();
CrcSpec crc16_ccitt_false();
CrcSpec crc16_kermit();
CrcSpec crc16_arc();
CrcSpec crc24_openpgp();
CrcSpec crc32_ethernet();  ///< ISO-HDLC: the paper's test case
CrcSpec crc32_bzip2();
CrcSpec crc32_mpeg2();
CrcSpec crc32c();
CrcSpec crc64_ecma();
CrcSpec crc64_xz();

/// Every spec above.
std::vector<CrcSpec> all();
}  // namespace crcspec

}  // namespace plfsr
