// CLMUL folding CRC — the carry-less-multiply realisation of the
// Ji/Killian GFMAC decomposition (src/crc/gfmac_crc.hpp):
//
//   CRC[A(x)] = sum_i (W_i(x) * beta_i) mod g(x)
//
// where the beta_i fold constants are x^D mod g for the lane distances D.
// A 64-byte block is held as four 128-bit lanes; one folding step
// multiplies each lane by x^512 mod g with two carry-less multiplies and
// XORs in the next block — the dense GF(2) work rides the multiplier's
// feed-forward datapath exactly the way the paper moves it into PiCoGA's
// feed-forward rows, leaving only XOR accumulation in the loop.
//
// Two bit-exact kernels are compiled into every binary:
//   - an x86 PCLMULQDQ/SSE4.1 kernel behind __attribute__((target)), and
//   - a portable kernel on a software 64x64 carry-less multiply.
// Construction picks the best one the machine supports (see
// support/cpu_features.hpp; PLFSR_FORCE_PORTABLE=1 forces the portable
// one). All fold and reduction constants are derived from the CrcSpec's
// generator with Gf2Poly::x_pow_mod at construction — any width <= 64,
// reflected or not, no hard-coded CRC-32 tables.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "crc/engine.hpp"
#include "crc/table_crc.hpp"

namespace plfsr {

/// Kernel selection for ClmulCrc.
enum class ClmulKernel {
  kAuto,         ///< best allowed: accelerated if the CPU has it
  kPortable,     ///< software carry-less multiply (always available)
  kAccelerated,  ///< PCLMULQDQ; construction throws if unsupported
};

/// Folding CRC engine over 64-byte blocks for any CrcSpec with
/// reflect_in == reflect_out (same restriction as TableCrc; every
/// catalogue spec qualifies). Exposes the shared byte-streaming
/// interface, so it runs under ParallelCrc, FcsStage and the engine
/// audit unchanged. Buffers below one block fall back to the embedded
/// byte table.
class ClmulCrc {
 public:
  explicit ClmulCrc(const CrcSpec& spec, ClmulKernel kernel = ClmulKernel::kAuto);

  const CrcSpec& spec() const { return base_.spec(); }

  /// The kernel actually selected ("pclmul" or "portable").
  const char* kernel_name() const;
  bool accelerated() const { return accelerated_; }

  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Batch absorb: states[i] = absorb(states[i], frames[i]), bit-exact
  /// with the loop but interleaved — up to 8 frames become one 128-bit
  /// lane each, folding 16 bytes per step in lockstep, so the two-clmul
  /// fold latency chain of one frame fills with the others' independent
  /// folds (the paper's 32-way message interleaving, at register width).
  /// Final reductions batch through the embedded table's absorb_many.
  /// Frames under 16 bulk bytes take the table path; a frame much longer
  /// than its group reduces early and continues on the 4-lane kernel.
  void absorb_many(std::span<std::uint64_t> states,
                   std::span<const FrameView> frames) const;

  /// Batch one-shot: out[i] = compute(frames[i]) via absorb_many.
  void compute_many(std::span<const FrameView> frames,
                    std::span<std::uint64_t> out) const;

  /// Shared byte-streaming interface (state convention == TableCrc's).
  std::uint64_t initial_state() const { return base_.initial_state(); }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const;
  std::uint64_t finalize(std::uint64_t state) const {
    return base_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const {
    return base_.raw_register(state);
  }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return base_.state_from_raw(raw);
  }

  /// Fold/reduction constants, exposed for the tests that check them
  /// against first-principles Gf2Poly arithmetic. Layout (all reduced
  /// mod g; reflected specs store the bit-reflected word of the
  /// (D-1)-power, the pre-shift that absorbs the reflected-product's
  /// extra x — see clmul_crc.cpp):
  ///   [0..1] x^512, x^576    (block fold, distance 512)
  ///   [2..3] x^128, x^192    (lane combine, distance 128)
  ///   [4..5] x^256, x^320    (lane combine, distance 256)
  ///   [6..7] x^384, x^448    (lane combine, distance 384)
  ///   [8]    x^128           (64-bit tail step)
  const std::array<std::uint64_t, 9>& fold_constants() const {
    return k_;
  }

 private:
  std::uint64_t absorb_bulk(std::uint64_t raw,
                            const std::uint8_t* p, std::size_t n) const;

  TableCrc base_;      ///< small-buffer fallback, tails, final reduction
  bool reflected_ = false;
  bool accelerated_ = false;
  std::array<std::uint64_t, 9> k_{};
};

/// Software 64x64 carry-less multiply: c(x) = a(x)*b(x) over GF(2),
/// the full 128-bit product as {lo, hi} coefficient words. The portable
/// kernel's primitive; unit-tested against Gf2Poly multiplication.
struct Clmul128 {
  std::uint64_t lo = 0, hi = 0;
};
Clmul128 clmul64_portable(std::uint64_t a, std::uint64_t b);

}  // namespace plfsr
