#include "crc/derby_crc.hpp"

namespace plfsr {

DerbyCrc::DerbyCrc(const CrcSpec& spec, std::size_t m)
    : spec_(spec),
      sys_(make_crc_system(spec.generator())),
      la_(sys_, m),
      derby_(la_) {}

std::uint64_t DerbyCrc::raw_bits(const BitStream& bits,
                                 std::uint64_t init_register) const {
  Gf2Vec x = Gf2Vec::from_word(spec_.width, init_register);
  const std::size_t m = derby_.m();
  // Align the stream serially (processor-side control, as in MatrixCrc),
  // then enter the transformed space for the parallel bulk.
  const std::size_t head = bits.size() % m;
  std::size_t pos = 0;
  for (; pos < head; ++pos) sys_.step(x, bits.get(pos));
  Gf2Vec xt = derby_.transform_state(x);  // x_t(0) = T^{-1} x(0)
  for (; pos < bits.size(); pos += m)
    derby_.step_state(xt, chunk_to_vec(bits, pos, m));
  return derby_.anti_transform(xt).to_word();  // op2: x = T x_t
}

std::uint64_t DerbyCrc::compute_bits(const BitStream& bits) const {
  return spec_.finalize(raw_bits(bits, spec_.init));
}

std::uint64_t DerbyCrc::compute(std::span<const std::uint8_t> bytes) const {
  return compute_bits(spec_.message_bits(bytes));
}

}  // namespace plfsr
