// Multi-core sharded CRC: the message-level application of the paper's
// state-advance algebra. The buffer is cut into S near-equal shards; each
// shard is absorbed independently by a byte-wise software engine (shard 0
// from the live state, shards 1..S-1 from the zero register) on a worker
// pool, and the partial registers are folded left-to-right with the
// CrcCombine operator — one O(log len) GF(2) matrix advance per shard.
//
// The wrapped engine is any LinearEngine behind a CrcEngineHandle (see
// crc/engine.hpp): the handle's virtual boundary is per shard-buffer, so
// the wrapped engine's inner loop runs devirtualized and one ParallelCrc
// implementation serves every engine in the registry — no per-engine
// template instantiations. ParallelCrc itself satisfies LinearEngine, so
// it composes anywhere a serial engine does — including streaming
// absorption of multi-buffer messages and nesting inside FcsStage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "crc/crc_combine.hpp"
#include "crc/crc_spec.hpp"
#include "crc/engine.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

/// Shard-parallel wrapper around a byte-wise CRC engine.
class ParallelCrc {
 public:
  /// Buffers smaller than shards * min_shard_bytes are absorbed serially:
  /// below this the combine fold costs more than it saves.
  static constexpr std::size_t kDefaultMinShardBytes = 4096;

  /// `shards` >= 1 workers-worth of decomposition; shard 0 runs on the
  /// calling thread, shards-1 pool workers handle the rest. Tests pass
  /// min_shard_bytes = 1 to force the parallel fold on tiny inputs.
  /// Accepts any LinearEngine (implicitly wrapped into a handle).
  explicit ParallelCrc(CrcEngineHandle engine, std::size_t shards,
                       std::size_t min_shard_bytes = kDefaultMinShardBytes);

  template <typename Engine>
    requires(LinearEngine<std::remove_cvref_t<Engine>> &&
             !std::same_as<std::remove_cvref_t<Engine>, CrcEngineHandle>)
  ParallelCrc(Engine&& engine, std::size_t shards,
              std::size_t min_shard_bytes = kDefaultMinShardBytes)
      : ParallelCrc(CrcEngineHandle(std::forward<Engine>(engine)), shards,
                    min_shard_bytes) {}

  const CrcSpec& spec() const { return engine_.spec(); }
  const CrcEngineHandle& engine() const { return engine_; }
  std::size_t shards() const { return shards_; }

  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Batch absorb over whole frames: each shard takes a near-equal
  /// contiguous run of *frames* (not slices of one buffer — small frames
  /// would drown in combine folds) and batches it through the wrapped
  /// engine's absorb_many, so per-shard the interleaved kernels still
  /// see full groups. Below the same small-work threshold as absorb()
  /// the calling thread batches everything itself.
  void absorb_many(std::span<std::uint64_t> states,
                   std::span<const FrameView> frames) const;

  /// Batch one-shot: out[i] = compute(frames[i]), sharded as above.
  void compute_many(std::span<const FrameView> frames,
                    std::span<std::uint64_t> out) const;

  std::uint64_t initial_state() const { return engine_.initial_state(); }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const;
  std::uint64_t finalize(std::uint64_t state) const {
    return engine_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const {
    return engine_.raw_register(state);
  }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return engine_.state_from_raw(raw);
  }

 private:
  CrcEngineHandle engine_;
  CrcCombine combine_;
  std::size_t shards_;
  std::size_t min_shard_bytes_;
  std::unique_ptr<ThreadPool> pool_;  // shards_ - 1 workers
};

static_assert(LinearEngine<ParallelCrc>);
static_assert(BatchLinearEngine<ParallelCrc>);

}  // namespace plfsr
