#include "crc/parallel_crc.hpp"

#include <future>
#include <stdexcept>
#include <vector>

#include "support/sharding.hpp"

namespace plfsr {

ParallelCrc::ParallelCrc(CrcEngineHandle engine, std::size_t shards,
                         std::size_t min_shard_bytes)
    : engine_(std::move(engine)),
      combine_(engine_.spec()),
      shards_(shards),
      min_shard_bytes_(min_shard_bytes < 1 ? 1 : min_shard_bytes) {
  if (shards_ < 1)
    throw std::invalid_argument("ParallelCrc: shards must be >= 1");
  if (shards_ > 1) pool_ = std::make_unique<ThreadPool>(shards_ - 1);
}

std::uint64_t ParallelCrc::absorb(std::uint64_t state,
                                  std::span<const std::uint8_t> bytes) const {
  const std::size_t n = bytes.size();
  if (shards_ == 1 || n < shards_ * min_shard_bytes_)
    return engine_.absorb(state, bytes);

  // Near-equal split (shared policy with ParallelScramble): the first
  // n % shards_ shards get one extra byte.
  std::vector<std::span<const std::uint8_t>> parts;
  parts.reserve(shards_);
  for (const ShardSlice& s : near_equal_slices(n, shards_))
    parts.push_back(bytes.subspan(s.offset, s.length));

  // Shards 1..S-1 absorb from the zero register on the pool while the
  // calling thread handles shard 0 from the live state. One virtual
  // absorb per shard — the handle's erasure boundary never enters the
  // per-byte loop.
  std::vector<std::uint64_t> partial(shards_, 0);
  std::vector<std::future<void>> pending;
  pending.reserve(shards_ - 1);
  const std::uint64_t zero_state = engine_.state_from_raw(0);
  for (std::size_t i = 1; i < shards_; ++i) {
    pending.push_back(pool_->submit(
        [this, zero_state, part = parts[i], out = &partial[i]] {
          *out = engine_.absorb(zero_state, part);
        }));
  }
  partial[0] = engine_.absorb(state, parts[0]);
  for (std::future<void>& f : pending) f.get();

  // Right-fold the partials: raw(A||B, s) = A^{|B|}·raw(A, s) + raw(B, 0).
  std::uint64_t raw = engine_.raw_register(partial[0]);
  for (std::size_t i = 1; i < shards_; ++i)
    raw = combine_.combine(raw, engine_.raw_register(partial[i]),
                           parts[i].size());
  return engine_.state_from_raw(raw);
}

std::uint64_t ParallelCrc::compute(std::span<const std::uint8_t> bytes) const {
  return finalize(absorb(initial_state(), bytes));
}

void ParallelCrc::absorb_many(std::span<std::uint64_t> states,
                              std::span<const FrameView> frames) const {
  std::size_t total = 0;
  for (const FrameView& f : frames) total += f.size();
  if (shards_ == 1 || total < shards_ * min_shard_bytes_ ||
      frames.size() < shards_) {
    engine_.absorb_many(states, frames);
    return;
  }
  // Frames are independent messages: no combine fold, just near-equal
  // runs of frames per shard, each run batched in one absorb_many so the
  // engine's interleaving still sees full groups. (Splitting by frame
  // count, not bytes: the batch workloads this serves are same-order
  // frame sizes, and a count split keeps the dispatch allocation-free.)
  const std::vector<ShardSlice> slices =
      near_equal_slices(frames.size(), shards_);
  std::vector<std::future<void>> pending;
  pending.reserve(shards_ - 1);
  for (std::size_t i = 1; i < shards_; ++i) {
    const ShardSlice s = slices[i];
    pending.push_back(pool_->submit([this, states, frames, s] {
      engine_.absorb_many(states.subspan(s.offset, s.length),
                          frames.subspan(s.offset, s.length));
    }));
  }
  engine_.absorb_many(states.subspan(0, slices[0].length),
                      frames.subspan(0, slices[0].length));
  for (std::future<void>& f : pending) f.get();
}

void ParallelCrc::compute_many(std::span<const FrameView> frames,
                               std::span<std::uint64_t> out) const {
  for (std::size_t i = 0; i < frames.size(); ++i)
    out[i] = engine_.initial_state();
  absorb_many(out, frames);
  for (std::size_t i = 0; i < frames.size(); ++i)
    out[i] = engine_.finalize(out[i]);
}

}  // namespace plfsr
