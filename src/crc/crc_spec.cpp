#include "crc/crc_spec.hpp"

namespace plfsr {

std::uint64_t reflect_bits(std::uint64_t v, unsigned width) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < width; ++i)
    if ((v >> i) & 1) out |= std::uint64_t{1} << (width - 1 - i);
  return out;
}

Gf2Poly CrcSpec::generator() const {
  return Gf2Poly::with_top_bit(width, poly);
}

BitStream CrcSpec::message_bits(std::span<const std::uint8_t> bytes) const {
  return reflect_in ? BitStream::from_bytes_lsb_first(bytes)
                    : BitStream::from_bytes_msb_first(bytes);
}

std::uint64_t CrcSpec::finalize(std::uint64_t raw_register) const {
  std::uint64_t r = raw_register & mask();
  if (reflect_out) r = reflect_bits(r, width);
  return (r ^ xorout) & mask();
}

namespace crcspec {

namespace {
CrcSpec make(std::string name, unsigned width, std::uint64_t poly,
             std::uint64_t init, bool refl, std::uint64_t xorout,
             std::uint64_t check) {
  CrcSpec s;
  s.name = std::move(name);
  s.width = width;
  s.poly = poly;
  s.init = init;
  s.reflect_in = refl;
  s.reflect_out = refl;
  s.xorout = xorout;
  s.check = check;
  return s;
}
}  // namespace

CrcSpec crc5_usb() { return make("CRC-5/USB", 5, 0x05, 0x1F, true, 0x1F, 0x19); }
CrcSpec crc7_mmc() { return make("CRC-7/MMC", 7, 0x09, 0, false, 0, 0x75); }
CrcSpec crc8_smbus() { return make("CRC-8/SMBUS", 8, 0x07, 0, false, 0, 0xF4); }
CrcSpec crc8_maxim() {
  return make("CRC-8/MAXIM", 8, 0x31, 0, true, 0, 0xA1);
}
CrcSpec crc15_can() {
  return make("CRC-15/CAN", 15, 0x4599, 0, false, 0, 0x059E);
}
CrcSpec crc16_xmodem() {
  return make("CRC-16/XMODEM", 16, 0x1021, 0, false, 0, 0x31C3);
}
CrcSpec crc16_ccitt_false() {
  return make("CRC-16/CCITT-FALSE", 16, 0x1021, 0xFFFF, false, 0, 0x29B1);
}
CrcSpec crc16_kermit() {
  return make("CRC-16/KERMIT", 16, 0x1021, 0, true, 0, 0x2189);
}
CrcSpec crc16_arc() {
  return make("CRC-16/ARC", 16, 0x8005, 0, true, 0, 0xBB3D);
}
CrcSpec crc24_openpgp() {
  return make("CRC-24/OPENPGP", 24, 0x864CFB, 0xB704CE, false, 0, 0x21CF02);
}
CrcSpec crc32_ethernet() {
  return make("CRC-32/ETHERNET", 32, 0x04C11DB7, 0xFFFFFFFF, true, 0xFFFFFFFF,
              0xCBF43926);
}
CrcSpec crc32_bzip2() {
  return make("CRC-32/BZIP2", 32, 0x04C11DB7, 0xFFFFFFFF, false, 0xFFFFFFFF,
              0xFC891918);
}
CrcSpec crc32_mpeg2() {
  return make("CRC-32/MPEG-2", 32, 0x04C11DB7, 0xFFFFFFFF, false, 0,
              0x0376E6E7);
}
CrcSpec crc32c() {
  return make("CRC-32C", 32, 0x1EDC6F41, 0xFFFFFFFF, true, 0xFFFFFFFF,
              0xE3069283);
}
CrcSpec crc64_ecma() {
  return make("CRC-64/ECMA-182", 64, 0x42F0E1EBA9EA3693ULL, 0, false, 0,
              0x6C40DF5F0B497347ULL);
}
CrcSpec crc64_xz() {
  return make("CRC-64/XZ", 64, 0x42F0E1EBA9EA3693ULL, ~std::uint64_t{0}, true,
              ~std::uint64_t{0}, 0x995DC9BBDF1939FAULL);
}

std::vector<CrcSpec> all() {
  return {crc5_usb(),          crc7_mmc(),    crc8_smbus(), crc8_maxim(),
          crc15_can(),         crc16_xmodem(), crc16_ccitt_false(),
          crc16_kermit(),      crc16_arc(),   crc24_openpgp(),
          crc32_ethernet(),    crc32_bzip2(), crc32_mpeg2(), crc32c(),
          crc64_ecma(),        crc64_xz()};
}

}  // namespace crcspec
}  // namespace plfsr
