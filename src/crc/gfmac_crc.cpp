#include "crc/gfmac_crc.hpp"

#include <cmath>
#include <vector>

namespace plfsr {

namespace {

/// Chunk [pos, pos+len) of the stream as a polynomial with the first bit
/// in the highest coefficient (transmission order == descending powers).
Gf2Poly chunk_poly(const BitStream& bits, std::size_t pos, std::size_t len) {
  Gf2Poly w;
  for (std::size_t j = 0; j < len; ++j)
    if (bits.get(pos + j)) w.set_coeff(static_cast<unsigned>(len - 1 - j), true);
  return w;
}

/// Register word (bit i = coeff of x^i) <-> polynomial.
Gf2Poly register_poly(std::uint64_t r, unsigned width) {
  Gf2Poly p;
  for (unsigned i = 0; i < width; ++i)
    if ((r >> i) & 1) p.set_coeff(i, true);
  return p;
}

std::uint64_t poly_word(const Gf2Poly& p, unsigned width) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < width; ++i)
    if (p.coeff(i)) r |= std::uint64_t{1} << i;
  return r;
}

}  // namespace

GfmacCrc::GfmacCrc(const CrcSpec& spec, std::size_t m)
    : spec_(spec), m_(m), g_(spec.generator()) {
  x_m_mod_g_ = Gf2Poly::x_pow_mod(m, g_);
}

std::uint64_t GfmacCrc::raw_bits_horner(const BitStream& bits,
                                        std::uint64_t init_register) const {
  Gf2Poly r = register_poly(init_register & spec_.mask(), spec_.width);
  const Gf2Poly xk = Gf2Poly::x_pow(spec_.width);
  std::size_t pos = 0;
  while (pos < bits.size()) {
    const std::size_t len = std::min(m_, bits.size() - pos);
    const Gf2Poly w = chunk_poly(bits, pos, len);
    const Gf2Poly x_len =
        len == m_ ? x_m_mod_g_ : Gf2Poly::x_pow_mod(len, g_);
    // R <- R * x^len + W * x^k  (two GFMACs; W*x^k shares the reducer)
    r = (r * x_len + w * xk) % g_;
    pos += len;
  }
  return poly_word(r, spec_.width);
}

std::uint64_t GfmacCrc::raw_bits_parallel(const BitStream& bits,
                                          std::uint64_t init_register) const {
  const std::uint64_t n = bits.size();
  // init * x^N contribution.
  Gf2Poly acc = (register_poly(init_register & spec_.mask(), spec_.width) *
                 Gf2Poly::x_pow_mod(n, g_)) %
                g_;
  // Independent chunk products W_i * beta_i — each one a GFMAC that a
  // hardware unit would execute concurrently with the others.
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t len = std::min(m_, static_cast<std::size_t>(n - pos));
    const Gf2Poly w = chunk_poly(bits, pos, len);
    const std::uint64_t exp_from_end = n - pos - len;  // trailing bits
    const Gf2Poly beta =
        Gf2Poly::x_pow_mod(exp_from_end + spec_.width, g_);
    acc = acc + (w * beta) % g_;
    pos += len;
  }
  return poly_word(acc % g_, spec_.width);
}

std::uint64_t GfmacCrc::compute_bits(const BitStream& bits) const {
  return spec_.finalize(raw_bits_parallel(bits, spec_.init));
}

std::uint64_t GfmacCrc::compute(std::span<const std::uint8_t> bytes) const {
  return compute_bits(spec_.message_bits(bytes));
}

std::uint64_t gfmac_cycles(std::uint64_t n_bits, std::size_t m,
                           std::size_t units) {
  if (n_bits == 0) return 0;
  const std::uint64_t chunks = (n_bits + m - 1) / m;
  const std::uint64_t rounds = (chunks + units - 1) / units;
  // XOR-reduce the per-unit partial sums (binary tree over active units).
  std::uint64_t active = std::min<std::uint64_t>(chunks, units);
  std::uint64_t reduce = 0;
  while (active > 1) {
    active = (active + 1) / 2;
    ++reduce;
  }
  return rounds + reduce;
}

}  // namespace plfsr
