// The unified linear-engine core.
//
// The paper's central claim is that CRC, scrambling and stream ciphers
// are the *same* machine — the linear recursion x(n+1) = A·x(n) + b·u(n)
// — loaded onto one fabric as different runtime configurations. The
// software mirror of that claim is a single streaming-engine contract
// that every CRC realisation in src/crc implements:
//
//   const CrcSpec& spec() const;
//   std::uint64_t  initial_state() const;
//   std::uint64_t  absorb(std::uint64_t state,
//                         std::span<const std::uint8_t> bytes) const;
//   std::uint64_t  finalize(std::uint64_t state) const;
//   std::uint64_t  raw_register(std::uint64_t state) const;
//   std::uint64_t  state_from_raw(std::uint64_t raw) const;
//
// Semantics every implementation must honour (the shared engine audit in
// tests/crc_engines_test.cpp enforces them for every registered engine):
//
//  - `state` is an opaque word. `initial_state()` starts a message;
//    absorb() may be called any number of times with byte-aligned
//    buffers (including empty ones) and must equal the one-shot
//    absorption of the concatenation; finalize() applies the spec's
//    output reflection/XOR and does not modify the state.
//  - raw_register()/state_from_raw() convert between the opaque state
//    and the orientation-free raw register (bit i = coefficient of x^i),
//    the representation the GF(2) combine operator and the hardware
//    mappings work in. `state_from_raw(raw_register(s)) == s`.
//  - All member functions are const and safe to call concurrently from
//    multiple threads on one engine instance (construction does all the
//    table/matrix precomputation; absorption is pure).
//
// `LinearEngine` states that contract as a C++20 concept, and
// `CrcEngineHandle` type-erases it. The virtual boundary of the handle
// is per *buffer*, not per byte: one indirect call per absorb() covers
// any number of bytes, so the folding/slicing/table inner loops stay
// fully devirtualized and the erasure overhead is bounded by a single
// indirect branch per call (bench_crc_engines pins it at <= 5% on
// 64 KiB buffers via the CI bench-regression gate).
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "crc/crc_spec.hpp"

namespace plfsr {

/// One independent message in a batch call: a borrowed byte view. The
/// batch API treats every FrameView as its own message (its own state /
/// CRC), unlike the shards of ParallelCrc, which are pieces of one.
using FrameView = std::span<const std::uint8_t>;

/// The shared streaming contract of every CRC engine (see file comment).
template <typename E>
concept LinearEngine = requires(const E e, std::uint64_t s,
                                std::span<const std::uint8_t> bytes) {
  { e.spec() } -> std::convertible_to<const CrcSpec&>;
  { e.initial_state() } -> std::convertible_to<std::uint64_t>;
  { e.absorb(s, bytes) } -> std::convertible_to<std::uint64_t>;
  { e.finalize(s) } -> std::convertible_to<std::uint64_t>;
  { e.raw_register(s) } -> std::convertible_to<std::uint64_t>;
  { e.state_from_raw(s) } -> std::convertible_to<std::uint64_t>;
};

/// Extension of LinearEngine for engines with a native batch kernel:
/// absorb_many folds frames[i] into states[i] for every i, semantically
/// equal to the absorb loop but free to interleave the independent
/// per-frame dependency chains (the software form of the paper's 32-way
/// message interleaving). Engines without it still batch through the
/// handle — CrcEngineHandle falls back to the loop, so the batch API is
/// correct-by-construction for every registry engine.
template <typename E>
concept BatchLinearEngine =
    LinearEngine<E> &&
    requires(const E e, std::span<std::uint64_t> states,
             std::span<const FrameView> frames) {
      { e.absorb_many(states, frames) };
    };

/// Cheap type-erased handle to any LinearEngine.
///
/// Copying shares the underlying engine (engines are immutable after
/// construction and concurrency-safe, so sharing is free); the handle
/// itself exposes the same streaming contract, which makes it a
/// LinearEngine too — it composes anywhere a concrete engine does.
class CrcEngineHandle {
 public:
  CrcEngineHandle() = default;

  /// Wrap a concrete engine. `name` is a display/registry tag (e.g.
  /// "slicing8"); empty is fine for ad-hoc wrapping.
  template <typename E>
    requires(LinearEngine<std::remove_cvref_t<E>> &&
             !std::same_as<std::remove_cvref_t<E>, CrcEngineHandle>)
  explicit CrcEngineHandle(E&& engine, std::string name = {})
      : impl_(std::make_shared<Model<std::remove_cvref_t<E>>>(
            std::forward<E>(engine))),
        name_(std::move(name)) {}

  explicit operator bool() const { return impl_ != nullptr; }

  /// Registry name of the wrapped engine ("" for ad-hoc wraps).
  const std::string& engine_name() const { return name_; }

  const CrcSpec& spec() const { return impl_->spec(); }
  std::uint64_t initial_state() const { return impl_->initial_state(); }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const {
    return impl_->absorb(state, bytes);
  }
  std::uint64_t finalize(std::uint64_t state) const {
    return impl_->finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const {
    return impl_->raw_register(state);
  }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return impl_->state_from_raw(raw);
  }

  /// One-shot convenience: finalize(absorb(initial_state(), bytes)).
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const {
    return impl_->compute(bytes);
  }

  /// Batch absorb: states[i] = absorb(states[i], frames[i]) for every i
  /// (states.size() must equal frames.size()). Routed to the engine's
  /// native absorb_many when it has one (BatchLinearEngine), else the
  /// absorb loop — bit-exact either way; one virtual call per batch.
  void absorb_many(std::span<std::uint64_t> states,
                   std::span<const FrameView> frames) const {
    impl_->absorb_many(states, frames);
  }

  /// Batch one-shot: out[i] = compute(frames[i]) for every i
  /// (out.size() must equal frames.size()).
  void compute_many(std::span<const FrameView> frames,
                    std::span<std::uint64_t> out) const {
    impl_->compute_many(frames, out);
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual const CrcSpec& spec() const = 0;
    virtual std::uint64_t initial_state() const = 0;
    virtual std::uint64_t absorb(std::uint64_t state,
                                 std::span<const std::uint8_t> b) const = 0;
    virtual std::uint64_t finalize(std::uint64_t state) const = 0;
    virtual std::uint64_t raw_register(std::uint64_t state) const = 0;
    virtual std::uint64_t state_from_raw(std::uint64_t raw) const = 0;
    virtual std::uint64_t compute(std::span<const std::uint8_t> b) const = 0;
    virtual void absorb_many(std::span<std::uint64_t> states,
                             std::span<const FrameView> frames) const = 0;
    virtual void compute_many(std::span<const FrameView> frames,
                              std::span<std::uint64_t> out) const = 0;
  };

  template <LinearEngine E>
  struct Model final : Iface {
    explicit Model(E e) : engine(std::move(e)) {}
    const CrcSpec& spec() const override { return engine.spec(); }
    std::uint64_t initial_state() const override {
      return engine.initial_state();
    }
    std::uint64_t absorb(std::uint64_t state,
                         std::span<const std::uint8_t> b) const override {
      return engine.absorb(state, b);
    }
    std::uint64_t finalize(std::uint64_t state) const override {
      return engine.finalize(state);
    }
    std::uint64_t raw_register(std::uint64_t state) const override {
      return engine.raw_register(state);
    }
    std::uint64_t state_from_raw(std::uint64_t raw) const override {
      return engine.state_from_raw(raw);
    }
    std::uint64_t compute(std::span<const std::uint8_t> b) const override {
      return engine.finalize(engine.absorb(engine.initial_state(), b));
    }
    void absorb_many(std::span<std::uint64_t> states,
                     std::span<const FrameView> frames) const override {
      if constexpr (BatchLinearEngine<E>) {
        engine.absorb_many(states, frames);
      } else {
        for (std::size_t i = 0; i < frames.size(); ++i)
          states[i] = engine.absorb(states[i], frames[i]);
      }
    }
    void compute_many(std::span<const FrameView> frames,
                      std::span<std::uint64_t> out) const override {
      if constexpr (requires { engine.compute_many(frames, out); }) {
        engine.compute_many(frames, out);
      } else if constexpr (BatchLinearEngine<E>) {
        for (std::size_t i = 0; i < frames.size(); ++i)
          out[i] = engine.initial_state();
        engine.absorb_many(out, frames);
        for (std::size_t i = 0; i < frames.size(); ++i)
          out[i] = engine.finalize(out[i]);
      } else {
        for (std::size_t i = 0; i < frames.size(); ++i)
          out[i] = engine.finalize(
              engine.absorb(engine.initial_state(), frames[i]));
      }
    }
    E engine;
  };

  std::shared_ptr<const Iface> impl_;
  std::string name_;
};

static_assert(LinearEngine<CrcEngineHandle>,
              "the handle must satisfy the contract it erases");
static_assert(BatchLinearEngine<CrcEngineHandle>,
              "the handle batches for every engine, native kernel or not");

}  // namespace plfsr
