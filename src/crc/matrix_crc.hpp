// M-bit-parallel CRC by direct M-level look-ahead (Pei & Zukowski [6]):
// the software model of a hardware block that keeps A^M in the feedback
// loop. Bit-exact against the serial reference for every spec, message
// length (bit-granular) and M.
//
// Messages whose length is not a multiple of M are handled the way the
// paper's processor-side control code does: the leading N mod M bits are
// clocked serially, after which the stream is chunk-aligned — this keeps
// the parallel datapath free of mid-stream pipeline breaks.
#pragma once

#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "lfsr/lookahead.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Look-ahead CRC engine for one (spec, M) pair.
class MatrixCrc {
 public:
  MatrixCrc(const CrcSpec& spec, std::size_t m);

  const CrcSpec& spec() const { return spec_; }
  std::size_t m() const { return la_.m(); }
  const LookAhead& lookahead() const { return la_; }

  /// Raw final register (bit i = coefficient of x^i) after feeding `bits`
  /// from register value `init_register`.
  std::uint64_t raw_bits(const BitStream& bits,
                         std::uint64_t init_register) const;

  /// Finalized CRC over a bit-granular message.
  std::uint64_t compute_bits(const BitStream& bits) const;

  /// Finalized CRC over bytes (applies the spec's reflection rules).
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

 private:
  CrcSpec spec_;
  LinearSystem sys_;
  LookAhead la_;
};

}  // namespace plfsr
