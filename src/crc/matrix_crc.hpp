// M-bit-parallel CRC by direct M-level look-ahead (Pei & Zukowski [6]):
// the software model of a hardware block that keeps A^M in the feedback
// loop. Bit-exact against the serial reference for every spec, message
// length (bit-granular) and M.
//
// Messages whose length is not a multiple of M are handled the way the
// paper's processor-side control code does: the leading N mod M bits are
// clocked serially, after which the stream is chunk-aligned — this keeps
// the parallel datapath free of mid-stream pipeline breaks.
#pragma once

#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "lfsr/lookahead.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Look-ahead CRC engine for one (spec, M) pair.
class MatrixCrc {
 public:
  MatrixCrc(const CrcSpec& spec, std::size_t m);

  const CrcSpec& spec() const { return spec_; }
  std::size_t m() const { return la_.m(); }
  const LookAhead& lookahead() const { return la_; }

  /// Raw final register (bit i = coefficient of x^i) after feeding `bits`
  /// from register value `init_register`.
  std::uint64_t raw_bits(const BitStream& bits,
                         std::uint64_t init_register) const;

  /// Finalized CRC over a bit-granular message.
  std::uint64_t compute_bits(const BitStream& bits) const;

  /// Finalized CRC over bytes (applies the spec's reflection rules).
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Byte-streaming interface shared with the table engines: the state IS
  /// the raw register (bit i = coefficient of x^i) — reflection lives in
  /// CrcSpec::message_bits, so byte-aligned chunked absorption is exact
  /// from any register value. This is what lets the engine run under
  /// ParallelCrc and the pipeline's CRC stage unmodified.
  std::uint64_t initial_state() const { return spec_.init; }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const {
    return raw_bits(spec_.message_bits(bytes), state);
  }
  std::uint64_t finalize(std::uint64_t state) const {
    return spec_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const { return state; }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return raw & spec_.mask();
  }

 private:
  CrcSpec spec_;
  LinearSystem sys_;
  LookAhead la_;
};

}  // namespace plfsr
