// Slicing-by-N CRC (Intel's generalisation of the Sarwate table method):
// N bytes are consumed per step through N parallel 256-entry tables whose
// lookups are independent, recovering instruction-level parallelism on a
// superscalar core. This is the strongest *software* baseline we pit the
// DREAM implementation against in the engine microbenchmarks — the
// paper-era equivalent of "what a programmable processor can do".
//
// Implemented for reflected specs (the Ethernet CRC-32 family); the
// non-reflected standards keep the TableCrc baseline.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"

namespace plfsr {

/// Slicing-by-`Slices` engine (4 and 8 instantiated in the .cpp).
template <unsigned Slices>
class SlicingCrc {
  static_assert(Slices == 4 || Slices == 8, "supported slice counts");

 public:
  explicit SlicingCrc(const CrcSpec& spec);

  const CrcSpec& spec() const { return spec_; }

  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  std::uint64_t initial_state() const;
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const;
  std::uint64_t finalize(std::uint64_t state) const;

  /// Engine state <-> raw register; same representation as TableCrc
  /// (the slicing state is the plain reflected register between blocks).
  std::uint64_t raw_register(std::uint64_t state) const {
    return base_.raw_register(state);
  }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return base_.state_from_raw(raw);
  }

 private:
  CrcSpec spec_;
  TableCrc base_;  // slice 0 + tail handling
  std::array<std::array<std::uint64_t, 256>, Slices> tables_{};
};

using SlicingBy4Crc = SlicingCrc<4>;
using SlicingBy8Crc = SlicingCrc<8>;

}  // namespace plfsr
