// Folding algebra (both kernels, both bit orders).
//
// Absorbing n bytes B into raw register R is R' = (R·x^{8n} + B(x)·x^k)
// mod g. The kernel computes a 128-bit value X ≡ B(x) + R·x^{8n-k}
// (mod g) without ever reducing mod g in the loop:
//
//   - R is XORed into the top k message bits (the first-block injection
//     trick), making the initial 64-byte block B'.
//   - Four 128-bit lanes hold the running block; one step multiplies
//     each lane by x^512 mod g (two carry-less multiplies per lane,
//     constants k_[0..1]) and XORs in the next 64 bytes.
//   - The lanes collapse into one 128-bit X with the distance-384/256/128
//     constants, then 8-byte words continue at distance 64 (k_[8]).
//   - X·x^k mod g is one 16-byte pass through the embedded Sarwate
//     table from the zero register: absorbing bits V from raw 0 yields
//     exactly (V(x)·x^k) mod g.
//
// Reflected specs run the same dataflow on bit-reflected words: with
// ra = reflect64(a), clmul(ra, rb) = reflect128(a·b·x), so every fold
// constant for distance D is stored pre-divided by x — reflect64(x^{D-1}
// mod g) — and the extra x of each product cancels it. Message words
// then load with no bit-reversal at all (plain little-endian loads), the
// trick that makes reflected CLMUL CRCs fast in real NIC/zlib stacks.
#include "crc/clmul_crc.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "gf2/gf2_poly.hpp"
#include "support/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define PLFSR_CLMUL_X86 1
#include <immintrin.h>
#endif

namespace plfsr {

namespace {

// Endian-explicit loads (the compiler folds these into single moves).
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// Low 64 coefficient bits of a reduced polynomial (deg <= 63).
std::uint64_t poly_word(const Gf2Poly& p) {
  std::uint64_t w = 0;
  for (unsigned i = 0; i < 64; ++i)
    if (p.coeff(i)) w |= std::uint64_t{1} << i;
  return w;
}

struct Lane {
  std::uint64_t q0 = 0, q1 = 0;
};

inline Lane xor_lane(Lane a, Lane b) { return {a.q0 ^ b.q0, a.q1 ^ b.q1}; }

inline Lane xor3(Lane a, Lane b, Lane c) {
  return {a.q0 ^ b.q0 ^ c.q0, a.q1 ^ b.q1 ^ c.q1};
}

/// Portable folding kernel. Lane storage: reflected specs keep the
/// plain little-endian image (q0 = reflect64 of the chunk's high
/// coefficient half), non-reflected keep (q0, q1) = (low, high)
/// coefficient words. Returns the unreduced 128-bit X.
template <bool Reflected>
Lane bulk_fold_portable(unsigned width, std::uint64_t raw,
                        const std::uint8_t* p, std::size_t n,
                        const std::array<std::uint64_t, 9>& k) {
  const auto load = [](const std::uint8_t* q) -> Lane {
    if constexpr (Reflected) return {load_le64(q), load_le64(q + 8)};
    return {load_be64(q + 8), load_be64(q)};
  };
  const auto fold = [&k](Lane v, unsigned lo_idx) -> Lane {
    // v · x^D mod-congruent: top-half word times k[hi], bottom-half word
    // times k[lo]. In the reflected image the top half sits in q0.
    Clmul128 a, b;
    if constexpr (Reflected) {
      a = clmul64_portable(v.q0, k[lo_idx + 1]);
      b = clmul64_portable(v.q1, k[lo_idx]);
    } else {
      a = clmul64_portable(v.q1, k[lo_idx + 1]);
      b = clmul64_portable(v.q0, k[lo_idx]);
    }
    return {a.lo ^ b.lo, a.hi ^ b.hi};
  };

  Lane l0 = load(p), l1 = load(p + 16), l2 = load(p + 32), l3 = load(p + 48);
  if constexpr (Reflected)
    l0.q0 ^= reflect_bits(raw, width);
  else
    l0.q1 ^= width < 64 ? raw << (64 - width) : raw;

  std::size_t pos = 64;
  for (; pos + 64 <= n; pos += 64) {
    l0 = xor_lane(fold(l0, 0), load(p + pos));
    l1 = xor_lane(fold(l1, 0), load(p + pos + 16));
    l2 = xor_lane(fold(l2, 0), load(p + pos + 32));
    l3 = xor_lane(fold(l3, 0), load(p + pos + 48));
  }

  Lane x = xor_lane(xor3(fold(l0, 6), fold(l1, 4), fold(l2, 2)), l3);

  for (; pos + 8 <= n; pos += 8) {
    // X·x^64 + next word: fold the departing top half with k[8].
    if constexpr (Reflected) {
      const Clmul128 t = clmul64_portable(x.q0, k[8]);
      x = {t.lo ^ x.q1, t.hi ^ load_le64(p + pos)};
    } else {
      const Clmul128 t = clmul64_portable(x.q1, k[8]);
      x = {t.lo ^ load_be64(p + pos), t.hi ^ x.q0};
    }
  }
  return x;
}

#ifdef PLFSR_CLMUL_X86

// PCLMULQDQ kernel. Identical dataflow to bulk_fold_portable; the two
// fold multiplies per lane become one clmul pair on the 128-bit lane
// register, and the non-reflected byte order is produced by a PSHUFB
// byte reversal on load. No lambdas here: GCC does not propagate the
// target attribute into local lambda bodies.
__attribute__((target("pclmul,sse4.1")))
Lane bulk_fold_x86(bool reflected, unsigned width, std::uint64_t raw,
                   const std::uint8_t* p, std::size_t n,
                   const std::array<std::uint64_t, 9>& k) {
  const __m128i bswap =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  const __m128i k512 = _mm_set_epi64x(static_cast<long long>(k[1]),
                                      static_cast<long long>(k[0]));
  const __m128i k128 = _mm_set_epi64x(static_cast<long long>(k[3]),
                                      static_cast<long long>(k[2]));
  const __m128i k256 = _mm_set_epi64x(static_cast<long long>(k[5]),
                                      static_cast<long long>(k[4]));
  const __m128i k384 = _mm_set_epi64x(static_cast<long long>(k[7]),
                                      static_cast<long long>(k[6]));
  const __m128i k64 = _mm_set_epi64x(static_cast<long long>(k[8]),
                                     static_cast<long long>(k[8]));

#define PLFSR_LOAD(q)                                              \
  (reflected ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)) \
             : _mm_shuffle_epi8(                                    \
                   _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)), \
                   bswap))
// Reflected image: top half in q0 (pairs with the hi constant in the
// pair's q1); coefficient image: top half in q1.
#define PLFSR_FOLD(v, kk)                                          \
  (reflected ? _mm_xor_si128(_mm_clmulepi64_si128((v), (kk), 0x10), \
                             _mm_clmulepi64_si128((v), (kk), 0x01)) \
             : _mm_xor_si128(_mm_clmulepi64_si128((v), (kk), 0x11), \
                             _mm_clmulepi64_si128((v), (kk), 0x00)))

  __m128i l0 = PLFSR_LOAD(p), l1 = PLFSR_LOAD(p + 16),
          l2 = PLFSR_LOAD(p + 32), l3 = PLFSR_LOAD(p + 48);
  if (reflected) {
    const std::uint64_t inj = reflect_bits(raw, width);
    l0 = _mm_xor_si128(l0, _mm_set_epi64x(0, static_cast<long long>(inj)));
  } else {
    const std::uint64_t inj = width < 64 ? raw << (64 - width) : raw;
    l0 = _mm_xor_si128(l0, _mm_set_epi64x(static_cast<long long>(inj), 0));
  }

  std::size_t pos = 64;
  for (; pos + 64 <= n; pos += 64) {
    l0 = _mm_xor_si128(PLFSR_FOLD(l0, k512), PLFSR_LOAD(p + pos));
    l1 = _mm_xor_si128(PLFSR_FOLD(l1, k512), PLFSR_LOAD(p + pos + 16));
    l2 = _mm_xor_si128(PLFSR_FOLD(l2, k512), PLFSR_LOAD(p + pos + 32));
    l3 = _mm_xor_si128(PLFSR_FOLD(l3, k512), PLFSR_LOAD(p + pos + 48));
  }

  __m128i x = _mm_xor_si128(
      _mm_xor_si128(PLFSR_FOLD(l0, k384), PLFSR_FOLD(l1, k256)),
      _mm_xor_si128(PLFSR_FOLD(l2, k128), l3));

  for (; pos + 8 <= n; pos += 8) {
    if (reflected) {
      const __m128i t = _mm_clmulepi64_si128(x, k64, 0x00);
      const std::uint64_t w = load_le64(p + pos);
      x = _mm_xor_si128(t, _mm_xor_si128(_mm_srli_si128(x, 8),
                                         _mm_set_epi64x(
                                             static_cast<long long>(w), 0)));
    } else {
      const __m128i t = _mm_clmulepi64_si128(x, k64, 0x11);
      const std::uint64_t w = load_be64(p + pos);
      x = _mm_xor_si128(t, _mm_xor_si128(_mm_slli_si128(x, 8),
                                         _mm_set_epi64x(
                                             0, static_cast<long long>(w))));
    }
  }
#undef PLFSR_LOAD
#undef PLFSR_FOLD

  Lane out;
  out.q0 = static_cast<std::uint64_t>(_mm_extract_epi64(x, 0));
  out.q1 = static_cast<std::uint64_t>(_mm_extract_epi64(x, 1));
  return out;
}

#endif  // PLFSR_CLMUL_X86

/// One frame's share of an interleaved batch: pointer/extent of the
/// 8-byte-aligned bulk, the injected raw register in, the unreduced
/// 128-bit lane out.
struct BatchLaneTask {
  const std::uint8_t* p = nullptr;
  std::size_t bulk = 0;  ///< multiple of 8, >= 16
  /// Starting register pre-positioned for lane injection (caller-side:
  /// the reflected table state IS the reflected raw register, so no
  /// per-frame reflect_bits loop runs on this path).
  std::uint64_t inj = 0;
  Lane x;
};

// Interleaving width. 8 lanes of 2-clmul folds cover the multiplier's
// ~7-cycle latency with room to spare and still fit the 16 xmm registers
// (8 states + 2 constant pairs + the shuffle mask).
constexpr std::size_t kBatchWays = 8;

#ifdef PLFSR_CLMUL_X86

// Interleaved single-lane folding: each task's frame is one 128-bit lane
// stepped 16 bytes at a time with the distance-128 constants (k[2..3]),
// all tasks in lockstep over their common prefix so the fold chains
// overlap. Tails past the common prefix finish per task (same dataflow,
// no interleaving), ending with the 8-byte step (k[8]) when the bulk is
// not a multiple of 16. Dataflow per lane is identical to bulk_fold_x86
// with one lane instead of four.
__attribute__((target("pclmul,sse4.1")))
void batch_fold_x86(bool reflected, BatchLaneTask* tasks, std::size_t m,
                    const std::array<std::uint64_t, 9>& k) {
  const __m128i bswap =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  const __m128i k128 = _mm_set_epi64x(static_cast<long long>(k[3]),
                                      static_cast<long long>(k[2]));
  const __m128i k64 = _mm_set_epi64x(static_cast<long long>(k[8]),
                                     static_cast<long long>(k[8]));

#define PLFSR_LOAD(q)                                              \
  (reflected ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)) \
             : _mm_shuffle_epi8(                                    \
                   _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)), \
                   bswap))
#define PLFSR_FOLD(v, kk)                                          \
  (reflected ? _mm_xor_si128(_mm_clmulepi64_si128((v), (kk), 0x10), \
                             _mm_clmulepi64_si128((v), (kk), 0x01)) \
             : _mm_xor_si128(_mm_clmulepi64_si128((v), (kk), 0x11), \
                             _mm_clmulepi64_si128((v), (kk), 0x00)))

  __m128i x[kBatchWays];
  std::size_t common = tasks[0].bulk;
  for (std::size_t f = 1; f < m; ++f)
    common = common < tasks[f].bulk ? common : tasks[f].bulk;
  common &= ~std::size_t{15};

  for (std::size_t f = 0; f < m; ++f) {
    x[f] = PLFSR_LOAD(tasks[f].p);
    x[f] = _mm_xor_si128(
        x[f], reflected
                  ? _mm_set_epi64x(0, static_cast<long long>(tasks[f].inj))
                  : _mm_set_epi64x(static_cast<long long>(tasks[f].inj), 0));
  }

  std::size_t pos = 16;
  for (; pos + 16 <= common; pos += 16)
    for (std::size_t f = 0; f < m; ++f)
      x[f] = _mm_xor_si128(PLFSR_FOLD(x[f], k128),
                           PLFSR_LOAD(tasks[f].p + pos));

  for (std::size_t f = 0; f < m; ++f) {
    std::size_t fp = pos;
    const std::size_t bulk = tasks[f].bulk;
    __m128i v = x[f];
    for (; fp + 16 <= bulk; fp += 16)
      v = _mm_xor_si128(PLFSR_FOLD(v, k128), PLFSR_LOAD(tasks[f].p + fp));
    if (fp + 8 <= bulk) {
      if (reflected) {
        const __m128i t = _mm_clmulepi64_si128(v, k64, 0x00);
        const std::uint64_t w = load_le64(tasks[f].p + fp);
        v = _mm_xor_si128(t, _mm_xor_si128(_mm_srli_si128(v, 8),
                                           _mm_set_epi64x(
                                               static_cast<long long>(w), 0)));
      } else {
        const __m128i t = _mm_clmulepi64_si128(v, k64, 0x11);
        const std::uint64_t w = load_be64(tasks[f].p + fp);
        v = _mm_xor_si128(t, _mm_xor_si128(_mm_slli_si128(v, 8),
                                           _mm_set_epi64x(
                                               0, static_cast<long long>(w))));
      }
    }
    tasks[f].x.q0 = static_cast<std::uint64_t>(_mm_extract_epi64(v, 0));
    tasks[f].x.q1 = static_cast<std::uint64_t>(_mm_extract_epi64(v, 1));
  }
#undef PLFSR_LOAD
#undef PLFSR_FOLD
}

#endif  // PLFSR_CLMUL_X86

/// Serialize an unreduced lane into the 16-byte image whose table
/// absorption from the zero register performs the final reduction
/// (byte order per bit orientation, as in ClmulCrc::absorb_bulk).
void lane_to_bytes(const Lane& x, bool reflected, std::uint8_t* buf) {
  if constexpr (std::endian::native == std::endian::little) {
    // Two 8-byte stores either way: little-endian qwords for the
    // reflected orientation, byte-swapped qwords for the aligned one.
    if (reflected) {
      std::memcpy(buf, &x.q0, 8);
      std::memcpy(buf + 8, &x.q1, 8);
    } else {
      const std::uint64_t hi = __builtin_bswap64(x.q1);
      const std::uint64_t lo = __builtin_bswap64(x.q0);
      std::memcpy(buf, &hi, 8);
      std::memcpy(buf + 8, &lo, 8);
    }
    return;
  }
  if (reflected) {
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<std::uint8_t>(x.q0 >> (8 * i));
      buf[8 + i] = static_cast<std::uint8_t>(x.q1 >> (8 * i));
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<std::uint8_t>(x.q1 >> (56 - 8 * i));
      buf[8 + i] = static_cast<std::uint8_t>(x.q0 >> (56 - 8 * i));
    }
  }
}

}  // namespace

Clmul128 clmul64_portable(std::uint64_t a, std::uint64_t b) {
  // 4-bit windows of a against precomputed b·{0..15} (each at most 67
  // bits: a low word plus a 3-bit spill).
  std::uint64_t tlo[16], thi[16];
  tlo[0] = 0;
  thi[0] = 0;
  tlo[1] = b;
  thi[1] = 0;
  for (int i = 2; i < 16; i += 2) {
    tlo[i] = tlo[i / 2] << 1;
    thi[i] = (thi[i / 2] << 1) | (tlo[i / 2] >> 63);
    tlo[i + 1] = tlo[i] ^ b;
    thi[i + 1] = thi[i];
  }
  std::uint64_t lo = 0, hi = 0;
  for (int s = 60; s >= 0; s -= 4) {
    hi = (hi << 4) | (lo >> 60);
    lo <<= 4;
    const unsigned w = static_cast<unsigned>(a >> s) & 0xF;
    lo ^= tlo[w];
    hi ^= thi[w];
  }
  return {lo, hi};
}

ClmulCrc::ClmulCrc(const CrcSpec& spec, ClmulKernel kernel)
    : base_(spec), reflected_(spec.reflect_in) {
  switch (kernel) {
    case ClmulKernel::kAuto:
      accelerated_ = clmul_allowed();
      break;
    case ClmulKernel::kPortable:
      accelerated_ = false;
      break;
    case ClmulKernel::kAccelerated:
      if (!cpu_features().pclmul || !cpu_features().sse41)
        throw std::runtime_error(
            "ClmulCrc: PCLMULQDQ/SSE4.1 not available on this CPU");
      accelerated_ = true;
      break;
  }
#ifndef PLFSR_CLMUL_X86
  if (accelerated_)
    throw std::runtime_error("ClmulCrc: accelerated kernel not compiled in");
#endif

  // Fold constants from the generator: x^D mod g via square-and-multiply.
  // Reflected constants are pre-divided by x (distance D stores
  // x^{D-1} mod g, bit-reflected) so the +1 degree of every
  // reflected-domain carry-less product cancels.
  const Gf2Poly g = spec.generator();
  const unsigned dist[9] = {512, 576, 128, 192, 256, 320, 384, 448, 128};
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t e = reflected_ ? dist[i] - 1 : dist[i];
    const std::uint64_t w = poly_word(Gf2Poly::x_pow_mod(e, g));
    k_[static_cast<std::size_t>(i)] = reflected_ ? reflect_bits(w, 64) : w;
  }
}

const char* ClmulCrc::kernel_name() const {
  return accelerated_ ? "pclmul" : "portable";
}

std::uint64_t ClmulCrc::absorb_bulk(std::uint64_t raw, const std::uint8_t* p,
                                    std::size_t n) const {
  const unsigned width = spec().width;
  Lane x;
#ifdef PLFSR_CLMUL_X86
  if (accelerated_)
    x = bulk_fold_x86(reflected_, width, raw, p, n, k_);
  else
#endif
    x = reflected_ ? bulk_fold_portable<true>(width, raw, p, n, k_)
                   : bulk_fold_portable<false>(width, raw, p, n, k_);

  // Final reduction: X·x^k mod g == absorbing X's 128 bits from the
  // zero register, i.e. one 16-byte pass through the Sarwate table.
  std::uint8_t buf[16];
  lane_to_bytes(x, reflected_, buf);
  return base_.raw_register(base_.absorb(0, {buf, 16}));
}

void ClmulCrc::absorb_many(std::span<std::uint64_t> states,
                           std::span<const FrameView> frames) const {
#ifdef PLFSR_CLMUL_X86
  if (accelerated_ && frames.size() >= 2) {
    // A frame whose bulk runs far past its group's lockstep prefix would
    // finish un-interleaved on the single-lane kernel; cap its share,
    // reduce early, and let the 4-lane single-frame kernel absorb the
    // remainder from the reduced register (streaming makes that exact).
    constexpr std::size_t kSerialFinishMax = 512;
    BatchLaneTask tasks[kBatchWays];
    std::size_t idx[kBatchWays];
    std::size_t m = 0;
    const auto flush = [&] {
      if (m == 0) return;
      if (m == 1) {
        states[idx[0]] = absorb(states[idx[0]], frames[idx[0]]);
        m = 0;
        return;
      }
      std::size_t common = tasks[0].bulk;
      for (std::size_t f = 1; f < m; ++f)
        common = std::min(common, tasks[f].bulk);
      for (std::size_t f = 0; f < m; ++f)
        tasks[f].bulk = std::min(tasks[f].bulk, common + kSerialFinishMax);
      batch_fold_x86(reflected_, tasks, m, k_);
      // Reductions batch through the table engine: one 16-byte image per
      // lane, the group's lookup chains interleaved by absorb_many.
      std::uint8_t bufs[kBatchWays][16];
      std::uint64_t red[kBatchWays];
      FrameView views[kBatchWays];
      for (std::size_t f = 0; f < m; ++f) {
        lane_to_bytes(tasks[f].x, reflected_, bufs[f]);
        red[f] = 0;
        views[f] = FrameView{bufs[f], 16};
      }
      base_.absorb_many({red, m}, {views, m});
      // red[f] is already the table state of the reduced register — the
      // sub-8-byte tail (if any) streams on from it directly. Frames the
      // kernel consumed whole (the common small-frame case) skip the
      // call entirely.
      for (std::size_t f = 0; f < m; ++f) {
        const FrameView frame = frames[idx[f]];
        states[idx[f]] = tasks[f].bulk == frame.size()
                             ? red[f]
                             : absorb(red[f], frame.subspan(tasks[f].bulk));
      }
      m = 0;
    };
    const unsigned width = spec().width;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const std::size_t bulk = frames[i].size() & ~std::size_t{7};
      if (bulk < 16) {
        states[i] = base_.absorb(states[i], frames[i]);
        continue;
      }
      // Injection word for the lane: the reflected table convention
      // already stores the bit-reversed register, so the state injects
      // as-is; the aligned convention left-justifies the raw register.
      const std::uint64_t inj =
          reflected_ ? states[i]
                     : (width < 64 ? base_.raw_register(states[i])
                                         << (64 - width)
                                   : base_.raw_register(states[i]));
      tasks[m] = {frames[i].data(), bulk, inj, {}};
      idx[m] = i;
      if (++m == kBatchWays) flush();
    }
    flush();
    return;
  }
#endif
  for (std::size_t i = 0; i < frames.size(); ++i)
    states[i] = absorb(states[i], frames[i]);
}

void ClmulCrc::compute_many(std::span<const FrameView> frames,
                            std::span<std::uint64_t> out) const {
  for (std::size_t i = 0; i < frames.size(); ++i)
    out[i] = initial_state();
  absorb_many(out, frames);
  for (std::size_t i = 0; i < frames.size(); ++i)
    out[i] = finalize(out[i]);
}

std::uint64_t ClmulCrc::absorb(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) const {
  const std::size_t bulk = bytes.size() & ~std::size_t{7};
  if (bulk < 64) return base_.absorb(state, bytes);
  const std::uint64_t raw =
      absorb_bulk(base_.raw_register(state), bytes.data(), bulk);
  return base_.absorb(base_.state_from_raw(raw), bytes.subspan(bulk));
}

std::uint64_t ClmulCrc::compute(std::span<const std::uint8_t> bytes) const {
  return finalize(absorb(initial_state(), bytes));
}

}  // namespace plfsr
