// W-bit-at-a-time table CRC — the generalized software look-ahead of
// Albertengo & Sisto [8] ("look-ahead is applied to the serial
// implementation resulting in a byte-wise parallel implementation whose
// feedback network is implemented as a lookup table plus shift-and-add
// operations"). W = 8 is the classic Sarwate byte table; W = 4 halves
// the table for memory-poor targets; W = 16 doubles the stride on
// processors that can afford a 64K-entry table.
//
// The table is the W-step look-ahead feedback network evaluated for all
// 2^W top-register/input combinations — i.e. exactly B_W and A^W folded
// into one lookup, which is why the engines here are built from the same
// LookAhead matrices as the hardware mappings and cross-checked against
// them in the tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crc/crc_spec.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Table-driven CRC consuming `stride` bits per lookup (1..16).
/// Works for any spec; reflection is handled by processing the message
/// bit stream in spec order (the table itself is reflection-agnostic).
class WideTableCrc {
 public:
  WideTableCrc(const CrcSpec& spec, unsigned stride);

  const CrcSpec& spec() const { return spec_; }
  unsigned stride() const { return stride_; }
  std::size_t table_entries() const { return table_.size(); }

  /// Raw register evolution over a bit stream (length need not be a
  /// multiple of the stride; the head is aligned bit-serially).
  std::uint64_t raw_bits(const BitStream& bits,
                         std::uint64_t init_register) const;

  /// Finalized CRC over bytes.
  std::uint64_t compute(std::span<const std::uint8_t> bytes) const;

  /// Byte-streaming interface matching the other software engines. The
  /// state here IS the raw register (bit i = coefficient of x^i) —
  /// reflection lives entirely in the per-byte bit order of
  /// CrcSpec::message_bits, so streaming byte-aligned buffers is exact.
  std::uint64_t initial_state() const { return spec_.init; }
  std::uint64_t absorb(std::uint64_t state,
                       std::span<const std::uint8_t> bytes) const;
  std::uint64_t finalize(std::uint64_t state) const {
    return spec_.finalize(state);
  }
  std::uint64_t raw_register(std::uint64_t state) const { return state; }
  std::uint64_t state_from_raw(std::uint64_t raw) const {
    return raw & spec_.mask();
  }

 private:
  CrcSpec spec_;
  unsigned stride_;
  std::vector<std::uint64_t> table_;  // 2^stride entries
};

}  // namespace plfsr
