#include "crc/ethernet.hpp"

#include <algorithm>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"
#include "support/rng.hpp"

namespace plfsr::ethernet {

namespace {
const TableCrc& engine() {
  static const TableCrc e(crcspec::crc32_ethernet());
  return e;
}
}  // namespace

std::uint32_t fcs(std::span<const std::uint8_t> frame) {
  return static_cast<std::uint32_t>(engine().compute(frame));
}

std::vector<std::uint8_t> append_fcs(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> out(frame.begin(), frame.end());
  const std::uint32_t f = fcs(frame);
  // Reflected CRC: transmit the low byte first so the receiver's running
  // register lands on the constant residue.
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(f >> (8 * i)));
  return out;
}

bool verify(std::span<const std::uint8_t> frame_with_fcs) {
  if (frame_with_fcs.size() < 4) return false;
  // Equivalent check: CRC over (frame || FCS) equals the fixed residue.
  return fcs(frame_with_fcs) == kResidue;
}

std::vector<std::uint8_t> make_test_frame(std::size_t payload_len,
                                          std::uint64_t seed) {
  payload_len = std::clamp<std::size_t>(payload_len, 46, 1500);
  Rng rng(seed);
  std::vector<std::uint8_t> frame = rng.next_bytes(6 + 6);  // DA + SA
  frame[0] &= 0xFE;  // unicast destination
  // EtherType: IPv4 for realism.
  frame.push_back(0x08);
  frame.push_back(0x00);
  const std::vector<std::uint8_t> payload = rng.next_bytes(payload_len);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return append_fcs(frame);
}

}  // namespace plfsr::ethernet
