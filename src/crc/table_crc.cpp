#include "crc/table_crc.hpp"

#include <stdexcept>

namespace plfsr {

TableCrc::TableCrc(const CrcSpec& spec) : spec_(spec) {
  if (spec.reflect_in != spec.reflect_out)
    throw std::invalid_argument("TableCrc: refin != refout unsupported");
  if (spec.reflect_in) {
    // Reflected register: poly reversed, shift right. Works for any width
    // (including sub-byte, e.g. CRC-5/USB).
    const std::uint64_t rpoly = reflect_bits(spec.poly, spec.width);
    for (unsigned b = 0; b < 256; ++b) {
      std::uint64_t crc = b;
      for (int i = 0; i < 8; ++i)
        crc = (crc >> 1) ^ ((crc & 1) ? rpoly : 0);
      table_[b] = crc;
    }
  } else {
    // Non-reflected: keep the register left-aligned to at least 8 bits so
    // sub-byte CRCs (CRC-7/MMC) use the same byte loop.
    align_ = spec.width < 8 ? 8 - spec.width : 0;
    const unsigned effw = spec.width + align_;
    const std::uint64_t apoly = spec.poly << align_;
    const std::uint64_t top = std::uint64_t{1} << (effw - 1);
    const std::uint64_t effmask =
        effw == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << effw) - 1;
    for (unsigned b = 0; b < 256; ++b) {
      std::uint64_t crc = static_cast<std::uint64_t>(b) << (effw - 8);
      for (int i = 0; i < 8; ++i)
        crc = ((crc & top) ? ((crc << 1) ^ apoly) : (crc << 1)) & effmask;
      table_[b] = crc;
    }
  }
}

std::uint64_t TableCrc::initial_state() const {
  return spec_.reflect_in ? reflect_bits(spec_.init, spec_.width)
                          : (spec_.init << align_);
}

std::uint64_t TableCrc::absorb(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) const {
  if (spec_.reflect_in) {
    for (std::uint8_t b : bytes)
      state = table_[(state ^ b) & 0xFF] ^ (state >> 8);
  } else {
    const unsigned effw = spec_.width + align_;
    const unsigned shift = effw - 8;
    const std::uint64_t effmask =
        effw == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << effw) - 1;
    for (std::uint8_t b : bytes)
      state = (table_[((state >> shift) ^ b) & 0xFF] ^ (state << 8)) & effmask;
  }
  return state;
}

std::uint64_t TableCrc::raw_register(std::uint64_t state) const {
  return spec_.reflect_in ? reflect_bits(state, spec_.width)
                          : (state >> align_);
}

std::uint64_t TableCrc::state_from_raw(std::uint64_t raw) const {
  raw &= spec_.mask();
  return spec_.reflect_in ? reflect_bits(raw, spec_.width) : (raw << align_);
}

std::uint64_t TableCrc::finalize(std::uint64_t state) const {
  // In the reflected implementation the register already holds the
  // refout-reflected value; in the aligned implementation shift the
  // register back down before applying the final XOR.
  if (!spec_.reflect_in) state >>= align_;
  return (state ^ spec_.xorout) & spec_.mask();
}

std::uint64_t TableCrc::compute(std::span<const std::uint8_t> bytes) const {
  return finalize(absorb(initial_state(), bytes));
}

}  // namespace plfsr
