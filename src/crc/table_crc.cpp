#include "crc/table_crc.hpp"

#include <algorithm>
#include <stdexcept>

namespace plfsr {

TableCrc::TableCrc(const CrcSpec& spec) : spec_(spec) {
  if (spec.reflect_in != spec.reflect_out)
    throw std::invalid_argument("TableCrc: refin != refout unsupported");
  if (spec.reflect_in) {
    // Reflected register: poly reversed, shift right. Works for any width
    // (including sub-byte, e.g. CRC-5/USB).
    const std::uint64_t rpoly = reflect_bits(spec.poly, spec.width);
    for (unsigned b = 0; b < 256; ++b) {
      std::uint64_t crc = b;
      for (int i = 0; i < 8; ++i)
        crc = (crc >> 1) ^ ((crc & 1) ? rpoly : 0);
      table_[b] = crc;
    }
  } else {
    // Non-reflected: keep the register left-aligned to at least 8 bits so
    // sub-byte CRCs (CRC-7/MMC) use the same byte loop.
    align_ = spec.width < 8 ? 8 - spec.width : 0;
    const unsigned effw = spec.width + align_;
    const std::uint64_t apoly = spec.poly << align_;
    const std::uint64_t top = std::uint64_t{1} << (effw - 1);
    const std::uint64_t effmask =
        effw == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << effw) - 1;
    for (unsigned b = 0; b < 256; ++b) {
      std::uint64_t crc = static_cast<std::uint64_t>(b) << (effw - 8);
      for (int i = 0; i < 8; ++i)
        crc = ((crc & top) ? ((crc << 1) ^ apoly) : (crc << 1)) & effmask;
      table_[b] = crc;
    }
  }
  // Computed once: reflect_bits is a width-iteration loop, and the
  // batch/small-frame paths ask for the initial state once per frame.
  init_state_ = spec_.reflect_in ? reflect_bits(spec_.init, spec_.width)
                                 : (spec_.init << align_);
}

std::uint64_t TableCrc::initial_state() const { return init_state_; }

std::uint64_t TableCrc::absorb(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) const {
  if (spec_.reflect_in) {
    for (std::uint8_t b : bytes)
      state = table_[(state ^ b) & 0xFF] ^ (state >> 8);
  } else {
    const unsigned effw = spec_.width + align_;
    const unsigned shift = effw - 8;
    const std::uint64_t effmask =
        effw == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << effw) - 1;
    for (std::uint8_t b : bytes)
      state = (table_[((state >> shift) ^ b) & 0xFF] ^ (state << 8)) & effmask;
  }
  return state;
}

void TableCrc::absorb_many(std::span<std::uint64_t> states,
                           std::span<const FrameView> frames) const {
  // Round-robin groups of up to 8 frames: lockstep over the common prefix
  // length (the per-frame lookup chains are independent, so the
  // out-of-order core keeps ~8 lookups in flight), then finish the
  // longer frames' tails through the serial loop.
  constexpr std::size_t kWays = 8;
  const unsigned effw = spec_.width + align_;
  const unsigned shift = effw - 8;
  const std::uint64_t effmask =
      effw == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << effw) - 1;
  for (std::size_t base = 0; base < frames.size(); base += kWays) {
    const std::size_t m = std::min(kWays, frames.size() - base);
    if (m == 1) {
      states[base] = absorb(states[base], frames[base]);
      continue;
    }
    std::size_t common = frames[base].size();
    for (std::size_t f = 1; f < m; ++f)
      common = std::min(common, frames[base + f].size());
    std::uint64_t st[kWays];
    const std::uint8_t* p[kWays];
    for (std::size_t f = 0; f < m; ++f) {
      st[f] = states[base + f];
      p[f] = frames[base + f].data();
    }
    if (spec_.reflect_in) {
      for (std::size_t j = 0; j < common; ++j)
        for (std::size_t f = 0; f < m; ++f)
          st[f] = table_[(st[f] ^ p[f][j]) & 0xFF] ^ (st[f] >> 8);
    } else {
      for (std::size_t j = 0; j < common; ++j)
        for (std::size_t f = 0; f < m; ++f)
          st[f] = (table_[((st[f] >> shift) ^ p[f][j]) & 0xFF] ^
                   (st[f] << 8)) &
                  effmask;
    }
    for (std::size_t f = 0; f < m; ++f)
      states[base + f] = absorb(st[f], frames[base + f].subspan(common));
  }
}

std::uint64_t TableCrc::raw_register(std::uint64_t state) const {
  return spec_.reflect_in ? reflect_bits(state, spec_.width)
                          : (state >> align_);
}

std::uint64_t TableCrc::state_from_raw(std::uint64_t raw) const {
  raw &= spec_.mask();
  return spec_.reflect_in ? reflect_bits(raw, spec_.width) : (raw << align_);
}

std::uint64_t TableCrc::finalize(std::uint64_t state) const {
  // In the reflected implementation the register already holds the
  // refout-reflected value; in the aligned implementation shift the
  // register back down before applying the final XOR.
  if (!spec_.reflect_in) state >>= align_;
  return (state ^ spec_.xorout) & spec_.mask();
}

std::uint64_t TableCrc::compute(std::span<const std::uint8_t> bytes) const {
  return finalize(absorb(initial_state(), bytes));
}

}  // namespace plfsr
