#include "crc/wide_table_crc.hpp"

#include <stdexcept>

#include "crc/serial_crc.hpp"

namespace plfsr {

WideTableCrc::WideTableCrc(const CrcSpec& spec, unsigned stride)
    : spec_(spec), stride_(stride) {
  if (stride == 0 || stride > 16)
    throw std::invalid_argument("WideTableCrc: stride must be 1..16");
  // Entry t: the register perturbation produced by W steps whose
  // combined (top-register XOR input) pattern is t. Computed by running
  // the serial recursion on register = t aligned to the top with zero
  // input — linearity does the rest.
  table_.resize(std::size_t{1} << stride);
  const std::uint64_t mask = spec.mask();
  const std::uint64_t top = std::uint64_t{1} << (spec.width - 1);
  for (std::uint64_t t = 0; t < table_.size(); ++t) {
    // Align pattern bit stride-1 (first processed) with the register top.
    // For stride > width the pattern's low bits act as direct input
    // bits, handled by the same shift-in recursion.
    std::uint64_t reg = 0;
    for (unsigned i = 0; i < stride_; ++i) {
      const bool fb =
          ((reg & top) != 0) ^ (((t >> (stride_ - 1 - i)) & 1) != 0);
      reg = (reg << 1) & mask;
      if (fb) reg ^= spec.poly;
    }
    table_[t] = reg;
  }
}

std::uint64_t WideTableCrc::raw_bits(const BitStream& bits,
                                     std::uint64_t init_register) const {
  const std::uint64_t mask = spec_.mask();
  std::uint64_t reg = init_register & mask;
  // Serial head so the bulk is stride-aligned.
  const std::size_t head = bits.size() % stride_;
  std::size_t pos = 0;
  if (head) {
    BitStream h;
    for (; pos < head; ++pos) h.push_back(bits.get(pos));
    reg = serial_crc_bits(h, spec_.width, spec_.poly, reg);
  }
  for (; pos < bits.size(); pos += stride_) {
    // Combined pattern: top `stride` register bits XOR the next input
    // bits (first bit in the pattern MSB). For stride > width the extra
    // low pattern bits are input-only.
    std::uint64_t pattern = 0;
    for (unsigned i = 0; i < stride_; ++i) {
      bool b = bits.get(pos + i);
      if (i < spec_.width)
        b ^= ((reg >> (spec_.width - 1 - i)) & 1) != 0;
      pattern = (pattern << 1) | (b ? 1 : 0);
    }
    const std::uint64_t shifted =
        stride_ >= spec_.width ? 0 : (reg << stride_) & mask;
    reg = shifted ^ table_[pattern];
  }
  return reg;
}

std::uint64_t WideTableCrc::absorb(std::uint64_t state,
                                   std::span<const std::uint8_t> bytes) const {
  return raw_bits(spec_.message_bits(bytes), state);
}

std::uint64_t WideTableCrc::compute(std::span<const std::uint8_t> bytes) const {
  return spec_.finalize(absorb(initial_state(), bytes));
}

}  // namespace plfsr
