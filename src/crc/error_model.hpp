// Error-detection analysis of CRC codes — the reason the paper's first
// application domain exists at all ("CRC ... used in many
// telecommunication protocols to verify the correctness of transmitted
// data"). These utilities state and check the classical guarantees:
//
//  * every error pattern that is NOT a multiple of g(x) is detected;
//  * any single-bit error is detected (g has at least two terms);
//  * any burst of length <= k is detected (g_0 = 1 for all real CRCs);
//  * two-bit errors are detected up to a spacing equal to the
//    multiplicative order of x mod g — for primitive g of degree k that
//    is 2^k - 1, which is why Ethernet chose a primitive generator.
//
// The tests use these as machine-checked properties; the
// `sampled_undetected_rate` estimator demonstrates the 2^-k residual
// rate on random garble.
#pragma once

#include <cstdint>
#include <cstddef>

#include "crc/crc_spec.hpp"
#include "support/bitstream.hpp"

namespace plfsr::crc_analysis {

/// True iff flipping `error` (same length as msg) changes the CRC.
bool error_detected(const CrcSpec& spec, const BitStream& msg,
                    const BitStream& error);

/// True iff the standalone error pattern is detectable — i.e. its
/// polynomial is NOT divisible by g(x). (Detection is independent of the
/// message: CRC is linear.)
bool pattern_detectable(const CrcSpec& spec, const BitStream& error);

/// Exhaustively verify that every single-bit error in an n-bit message
/// is detected.
bool detects_all_single_bit(const CrcSpec& spec, std::size_t n_bits);

/// Exhaustively verify that every burst of length <= spec.width in an
/// n-bit message is detected (all 2^(b-2) interior patterns per position
/// for bursts of length b; n_bits kept small by the caller).
bool detects_all_bursts(const CrcSpec& spec, std::size_t n_bits);

/// The largest message length (in bits) for which ALL two-bit errors are
/// detected: the multiplicative order of x modulo g. Requires g_0 = 1.
/// NOTE: for a *reducible* generator the order computation falls back to
/// an O(2^k) scan — call this only on primitive or small-width specs.
std::uint64_t two_bit_error_horizon(const CrcSpec& spec);

/// Monte-Carlo estimate of the undetected-error probability for random
/// error patterns of the given weight; converges to ~2^-k for weights
/// past the guaranteed-detection regime.
double sampled_undetected_rate(const CrcSpec& spec, std::size_t n_bits,
                               std::size_t weight, std::size_t samples,
                               std::uint64_t seed);

}  // namespace plfsr::crc_analysis
