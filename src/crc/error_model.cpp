#include "crc/error_model.hpp"

#include <stdexcept>

#include "crc/serial_crc.hpp"
#include "support/rng.hpp"

namespace plfsr::crc_analysis {

bool error_detected(const CrcSpec& spec, const BitStream& msg,
                    const BitStream& error) {
  if (msg.size() != error.size())
    throw std::invalid_argument("error_detected: length mismatch");
  BitStream corrupted = msg;
  for (std::size_t i = 0; i < msg.size(); ++i)
    if (error.get(i)) corrupted.set(i, !corrupted.get(i));
  return serial_crc_bits(msg, spec.width, spec.poly, spec.init) !=
         serial_crc_bits(corrupted, spec.width, spec.poly, spec.init);
}

bool pattern_detectable(const CrcSpec& spec, const BitStream& error) {
  // Linearity: CRC(msg ^ e) == CRC(msg) iff CRC_0(e) == 0 (zero init),
  // i.e. iff e(x) * x^k is divisible by g(x); with g_0 = 1, iff g | e.
  return serial_crc_bits(error, spec.width, spec.poly, 0) != 0;
}

bool detects_all_single_bit(const CrcSpec& spec, std::size_t n_bits) {
  for (std::size_t i = 0; i < n_bits; ++i) {
    BitStream e(n_bits);
    e.set(i, true);
    if (!pattern_detectable(spec, e)) return false;
  }
  return true;
}

bool detects_all_bursts(const CrcSpec& spec, std::size_t n_bits) {
  // A burst of length b at position p: bit p and bit p+b-1 set, interior
  // arbitrary.
  for (std::size_t b = 1; b <= spec.width && b <= n_bits; ++b) {
    const std::size_t interior = b >= 2 ? b - 2 : 0;
    const std::uint64_t variants = std::uint64_t{1} << interior;
    for (std::size_t p = 0; p + b <= n_bits; ++p) {
      for (std::uint64_t v = 0; v < variants; ++v) {
        BitStream e(n_bits);
        e.set(p, true);
        if (b >= 2) e.set(p + b - 1, true);
        for (std::size_t j = 0; j < interior; ++j)
          if ((v >> j) & 1) e.set(p + 1 + j, true);
        if (!pattern_detectable(spec, e)) return false;
      }
    }
  }
  return true;
}

std::uint64_t two_bit_error_horizon(const CrcSpec& spec) {
  const Gf2Poly g = spec.generator();
  if (!g.coeff(0))
    throw std::invalid_argument("two_bit_error_horizon: g_0 must be 1");
  // x^i + x^j = x^j (x^(i-j) + 1) is a multiple of g iff g | x^d + 1 with
  // d = i - j, i.e. iff d is a multiple of ord(x). The horizon is ord(x).
  return g.order_of_x();
}

double sampled_undetected_rate(const CrcSpec& spec, std::size_t n_bits,
                               std::size_t weight, std::size_t samples,
                               std::uint64_t seed) {
  if (weight == 0 || weight > n_bits)
    throw std::invalid_argument("sampled_undetected_rate: bad weight");
  Rng rng(seed);
  std::size_t undetected = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    BitStream e(n_bits);
    std::size_t placed = 0;
    while (placed < weight) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.next_below(n_bits));
      if (!e.get(pos)) {
        e.set(pos, true);
        ++placed;
      }
    }
    if (!pattern_detectable(spec, e)) ++undetected;
  }
  return static_cast<double>(undetected) / static_cast<double>(samples);
}

}  // namespace plfsr::crc_analysis
