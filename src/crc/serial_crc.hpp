// Bit-serial CRC — the reference semantics every parallel engine is
// verified against, and the direct software analogue of the serial LFSR
// of the paper's Fig. 1 (one register shift per message bit).
#pragma once

#include <cstdint>
#include <span>

#include "crc/crc_spec.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Raw register evolution: starting from `init_register` (bit i =
/// coefficient of x^i), clock the Galois-form register once per bit of
/// `bits` in stream order. Returns the final register. This is the exact
/// state recursion x(n+1) = A x(n) + b u(n) of the paper specialised to
/// the companion A, evaluated with word arithmetic.
std::uint64_t serial_crc_bits(const BitStream& bits, unsigned width,
                              std::uint64_t poly, std::uint64_t init_register);

/// Full spec computation (bytes in, finalized value out).
std::uint64_t serial_crc(const CrcSpec& spec,
                         std::span<const std::uint8_t> bytes);

}  // namespace plfsr
