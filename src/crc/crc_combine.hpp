// GF(2) shard-combine operator for CRC register states — the message-level
// dual of the paper's M-bit look-ahead. The state recursion
// x(n+M) = A^M·x(n) + B_M·u_M(n) is affine in the initial state, so the
// raw register over a concatenation splits as
//
//   raw(A||B, s) = A^{|B|} · raw(A, s)  +  raw(B, 0)
//
// i.e. a buffer can be cut into shards, each CRC'd independently (shard 0
// from the real init, the rest from the zero register), and the partials
// merged right-to-left with one matrix-vector product per shard. This is
// zlib's crc32_combine generalised to every CrcSpec in the catalogue: the
// advance matrices are the multiplication-by-x^{2^i} maps mod g(x), so an
// advance over any segment length costs O(log n) 64-bit matrix applies.
#pragma once

#include <cstdint>

#include "crc/crc_spec.hpp"
#include "gf2/gf2_advance.hpp"

namespace plfsr {

/// Precomputed log-time state advance / segment merge for one CrcSpec.
/// All states here are raw registers (bit i = coefficient of x^i), the
/// orientation-free representation shared by serial_crc_bits and
/// MatrixCrc::raw_bits.
class CrcCombine {
 public:
  explicit CrcCombine(const CrcSpec& spec);

  const CrcSpec& spec() const { return spec_; }

  /// A^n · raw: the register after clocking n zero message bits from
  /// `raw` (equivalently raw(x)·x^n mod g(x)). O(popcount(n)) matrix
  /// applies against the precomputed x^{2^i} powers.
  std::uint64_t advance_bits(std::uint64_t raw, std::uint64_t n_bits) const;

  /// Byte-granular advance: A^{8·n_bytes} · raw.
  std::uint64_t advance(std::uint64_t raw, std::uint64_t n_bytes) const;

  /// Raw register of the concatenation A||B given raw_a = raw(A, init)
  /// and raw_b = raw(B, 0) (segment B absorbed from the zero register),
  /// with len_b_bytes = |B|. Zero-length B is the identity: the result
  /// is raw_a.
  std::uint64_t combine(std::uint64_t raw_a, std::uint64_t raw_b,
                        std::uint64_t len_b_bytes) const;

 private:
  CrcSpec spec_;
  // The multiplication-by-x^{2^i} tables mod g live in the shared
  // Gf2Advance helper (BlockScrambler uses the same machinery for
  // seekable keystreams); here the advanced map is the Galois companion
  // matrix, i.e. multiplication by x on GF(2)[x]/g(x).
  Gf2Advance adv_;
};

}  // namespace plfsr
